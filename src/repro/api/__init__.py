"""Public client API for running experiments as jobs.

This package is the supported programmatic surface of the job service
(docs/SERVICE.md).  Everything a caller needs is exported here::

    from repro.api import Client

    with Client(state_dir="state") as client:
        handle = client.submit("fig8")
        client.wait(handle.job_id)
        print(client.result(handle.job_id).render())

Resubmitting the same (experiment, seed, overrides) against the same
``state_dir`` is a cache hit: no simulation runs, and the returned
artefacts are byte-identical to the fresh run's (a property enforced by
the ``result_cache`` differential oracle in :mod:`repro.check`).

Naming convention (see docs/API.md): names exported from ``repro.api``
and ``repro.service`` package roots are public and stable; modules with
a leading underscore (``repro.api._client``, ``repro.service._queue``,
...) are internal and may change without notice.
"""

from repro.api._client import (
    DEFAULT_CLIENT,
    Client,
    JobHandle,
    JobResult,
    JobStatus,
)
from repro.api._schema import JOB_RECORD_SCHEMA, JOB_REQUEST_SCHEMA

__all__ = [
    "Client",
    "DEFAULT_CLIENT",
    "JOB_RECORD_SCHEMA",
    "JOB_REQUEST_SCHEMA",
    "JobHandle",
    "JobResult",
    "JobStatus",
]
