"""Online anomaly diagnosis (the paper's runtime phase).

The diagnosis framework the paper evaluates (Tuncer et al., cited as
[48, 49]) has an *offline* training phase and a *runtime* phase that slides
a window over live monitoring data and predicts the active root cause at
each step.  :class:`OnlineDiagnoser` implements the runtime phase on top of
the offline pipeline:

* train on labelled windows (any classifier with ``fit``/``predict``),
* stream a node's time series through a sliding window,
* emit a timeline of predictions,
* score it against the injector's ground-truth schedule — including the
  *detection latency*: how long after an anomaly starts the diagnoser
  first names it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.features import extract_features
from repro.errors import ConfigError


@dataclass(frozen=True)
class TimelinePrediction:
    """One sliding-window prediction."""

    time: float  # timestamp of the window's last sample
    label: str


@dataclass
class OnlineReport:
    """Scored online-diagnosis timeline."""

    predictions: list[TimelinePrediction]
    accuracy: float
    detection_latency: float | None  # seconds; None if never detected

    def labels_between(self, t0: float, t1: float) -> list[str]:
        return [p.label for p in self.predictions if t0 <= p.time < t1]


class OnlineDiagnoser:
    """Slides a window over live monitoring data and predicts root causes.

    Parameters
    ----------
    model:
        A fitted classifier (``predict`` over feature rows).
    window:
        Sliding-window length in samples.
    stride:
        Steps between predictions (1 = every sample once the window fills).
    """

    def __init__(self, model, window: int = 30, stride: int = 5) -> None:
        if window < 2 or stride < 1:
            raise ConfigError("window >= 2 and stride >= 1 required")
        self.model = model
        self.window = window
        self.stride = stride

    def predict_timeline(
        self, times: np.ndarray, series: np.ndarray
    ) -> list[TimelinePrediction]:
        """Predictions over a (T,) timestamp vector and (T, M) matrix."""
        times = np.asarray(times, dtype=float)
        series = np.asarray(series, dtype=float)
        if series.ndim != 2 or times.shape[0] != series.shape[0]:
            raise ConfigError("times (T,) and series (T, M) must align")
        out: list[TimelinePrediction] = []
        rows = []
        stamps = []
        for end in range(self.window, series.shape[0] + 1, self.stride):
            rows.append(extract_features(series[end - self.window : end]))
            stamps.append(float(times[end - 1]))
        if not rows:
            return out
        labels = self.model.predict(np.vstack(rows))
        for stamp, label in zip(stamps, labels):
            out.append(TimelinePrediction(time=stamp, label=str(label)))
        return out

    def evaluate(
        self,
        times: np.ndarray,
        series: np.ndarray,
        truth,  # callable time -> label, e.g. built on injector.active_labels
    ) -> OnlineReport:
        """Score a timeline against a ground-truth labelling function.

        ``truth(t)`` returns the active label at time ``t`` ("none" when
        nothing is injected).  Detection latency is measured from the
        first moment truth != "none" to the first correct non-"none"
        prediction at or after it.
        """
        predictions = self.predict_timeline(times, series)
        if not predictions:
            raise ConfigError("series shorter than one window")
        correct = sum(1 for p in predictions if p.label == truth(p.time))
        accuracy = correct / len(predictions)

        onset: float | None = None
        for t in np.asarray(times, dtype=float):
            if truth(float(t)) != "none":
                onset = float(t)
                break
        latency: float | None = None
        if onset is not None:
            for p in predictions:
                if p.time >= onset and p.label != "none" and p.label == truth(p.time):
                    latency = p.time - onset
                    break
        return OnlineReport(
            predictions=predictions, accuracy=accuracy, detection_latency=latency
        )
