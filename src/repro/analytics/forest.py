"""Random forest classifier built on the CART tree."""

from __future__ import annotations

import numpy as np

from repro.analytics.tree import DecisionTreeClassifier
from repro.errors import ConfigError
from repro.sim.rng import spawn_rng


class RandomForestClassifier:
    """Bagged CART trees with per-split feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth / min_samples_leaf:
        Passed to each tree.
    max_features:
        Features per split ("sqrt" default, the standard forest choice).
    seed:
        Controls bootstrap draws and per-tree feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ConfigError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ConfigError("X and y must be non-empty with matching N")
        self.classes_ = np.unique(y)
        rng = spawn_rng(self.seed, "forest")
        n = X.shape[0]
        self.trees_ = []
        for t in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)  # bootstrap
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of per-tree class probabilities over ``classes_``."""
        if not self.trees_ or self.classes_ is None:
            raise ConfigError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        total = np.zeros((X.shape[0], len(self.classes_)))
        class_pos = {c: i for i, c in enumerate(self.classes_)}
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            cols = [class_pos[c] for c in tree.classes_]
            total[:, cols] += proba
        return total / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-decrease importance across the forest's trees."""
        if not self.trees_:
            raise ConfigError("classifier is not fitted")
        stacked = np.vstack([t.feature_importances_ for t in self.trees_])
        return stacked.mean(axis=0)
