"""Statistical feature extraction from monitoring time series.

Following Tuncer et al. (the diagnosis framework the paper evaluates), each
metric's time-series window is summarised by order statistics and moments;
the concatenation over all metrics is the sample fed to the classifiers.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigError

#: per-metric statistics, in emission order
STAT_NAMES = (
    "mean",
    "std",
    "min",
    "max",
    "skew",
    "kurtosis",
    "p5",
    "p25",
    "p50",
    "p75",
    "p95",
)


def _column_features(col: np.ndarray) -> list[float]:
    if col.size == 0:
        raise ConfigError("cannot extract features from an empty window")
    constant = bool(np.all(col == col[0]))
    return [
        float(np.mean(col)),
        float(np.std(col)),
        float(np.min(col)),
        float(np.max(col)),
        0.0 if constant else float(stats.skew(col)),
        0.0 if constant else float(stats.kurtosis(col)),
        float(np.percentile(col, 5)),
        float(np.percentile(col, 25)),
        float(np.percentile(col, 50)),
        float(np.percentile(col, 75)),
        float(np.percentile(col, 95)),
    ]


def extract_features(window: np.ndarray) -> np.ndarray:
    """Features for one (T, M) window: 11 statistics per metric column."""
    arr = np.asarray(window, dtype=float)
    if arr.ndim != 2:
        raise ConfigError("window must be a (T, M) array")
    feats: list[float] = []
    for m in range(arr.shape[1]):
        feats.extend(_column_features(arr[:, m]))
    return np.asarray(feats)


def feature_names(metrics: list[str]) -> list[str]:
    """Names aligned with :func:`extract_features` output order."""
    return [f"{metric}__{stat}" for metric in metrics for stat in STAT_NAMES]


def windows(
    series: np.ndarray, width: int, stride: int | None = None
) -> list[np.ndarray]:
    """Slice a (T, M) matrix into fixed-width windows along time.

    The paper's framework uses 45-sample windows; a trailing partial
    window is dropped (diagnosis needs full windows).
    """
    if width < 1:
        raise ConfigError("window width must be >= 1")
    stride = width if stride is None else stride
    if stride < 1:
        raise ConfigError("window stride must be >= 1")
    arr = np.asarray(series, dtype=float)
    out = []
    start = 0
    while start + width <= arr.shape[0]:
        out.append(arr[start : start + width])
        start += stride
    return out
