"""Stratified k-fold cross-validation utilities."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sim.rng import spawn_rng


def stratified_kfold(
    y: np.ndarray,
    k: int = 3,
    seed: int | None = None,
    groups: np.ndarray | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``k`` (train_idx, test_idx) pairs with per-class balance.

    Without ``groups``, samples of each class are shuffled
    (deterministically from ``seed``) and dealt round-robin into folds.

    With ``groups`` (e.g. the run a window came from), whole groups are
    dealt into folds instead, so windows of the same monitored run never
    straddle the train/test boundary — the split the paper's run-level
    evaluation implies.  Each group must carry a single label.
    """
    y = np.asarray(y)
    if k < 2:
        raise ConfigError("k must be >= 2")
    if y.size < k:
        raise ConfigError("not enough samples for the requested folds")
    rng = spawn_rng(seed, "kfold")
    folds: list[list[int]] = [[] for _ in range(k)]
    if groups is None:
        for label in np.unique(y):
            idx = np.nonzero(y == label)[0]
            rng.shuffle(idx)
            for i, sample in enumerate(idx):
                folds[i % k].append(int(sample))
    else:
        groups = np.asarray(groups)
        if groups.shape != y.shape:
            raise ConfigError("groups must align with y")
        group_label: dict = {}
        for g, label in zip(groups.tolist(), y.tolist()):
            if group_label.setdefault(g, label) != label:
                raise ConfigError(f"group {g!r} has mixed labels")
        for label in np.unique(y):
            label_groups = sorted({g for g, lab in group_label.items() if lab == label})
            order = rng.permutation(len(label_groups))
            for i, gi in enumerate(order):
                g = label_groups[gi]
                members = np.nonzero(groups == g)[0]
                folds[i % k].extend(int(m) for m in members)
    out = []
    all_idx = set(range(y.size))
    for fold in folds:
        test = np.asarray(sorted(fold), dtype=int)
        train = np.asarray(sorted(all_idx - set(fold)), dtype=int)
        out.append((train, test))
    return out


def cross_val_predict(
    make_model,
    X: np.ndarray,
    y: np.ndarray,
    k: int = 3,
    seed: int | None = None,
    groups: np.ndarray | None = None,
) -> np.ndarray:
    """Out-of-fold predictions for every sample.

    ``make_model`` is a zero-argument factory returning a fresh,
    unfitted classifier with ``fit``/``predict``.  ``groups`` keeps
    same-run windows in the same fold (see :func:`stratified_kfold`).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    predictions = np.empty(y.shape, dtype=y.dtype)
    for train, test in stratified_kfold(y, k=k, seed=seed, groups=groups):
        model = make_model()
        model.fit(X[train], y[train])
        predictions[test] = model.predict(X[test])
    return predictions
