"""Anomaly diagnosis analytics: features, tree models, metrics, pipeline.

This subpackage reimplements — from scratch, on numpy — the machinery the
paper's Sec. 5.1 borrows from Tuncer et al.: statistical feature extraction
from monitoring time series, tree-based classifiers (decision tree, random
forest, AdaBoost), and the evaluation harness (per-class F1, confusion
matrix, stratified 3-fold cross-validation).
"""

from repro.analytics.features import extract_features, feature_names, windows
from repro.analytics.tree import DecisionTreeClassifier
from repro.analytics.forest import RandomForestClassifier
from repro.analytics.adaboost import AdaBoostClassifier
from repro.analytics.metrics import confusion_matrix, f1_scores, macro_f1
from repro.analytics.crossval import cross_val_predict, stratified_kfold
from repro.analytics.diagnosis import DiagnosisDataset, DiagnosisPipeline

__all__ = [
    "AdaBoostClassifier",
    "DecisionTreeClassifier",
    "DiagnosisDataset",
    "DiagnosisPipeline",
    "RandomForestClassifier",
    "confusion_matrix",
    "cross_val_predict",
    "extract_features",
    "f1_scores",
    "feature_names",
    "macro_f1",
    "stratified_kfold",
    "windows",
]
