"""Multi-class AdaBoost (SAMME) on shallow CART trees."""

from __future__ import annotations

import numpy as np

from repro.analytics.tree import DecisionTreeClassifier
from repro.errors import ConfigError


class AdaBoostClassifier:
    """SAMME boosting with depth-limited trees as weak learners.

    Parameters
    ----------
    n_estimators:
        Boosting rounds (early-stopped if a learner reaches zero error or
        does no better than chance).
    max_depth:
        Depth of each weak learner (stumps-ish; 2 by default because
        multi-class SAMME needs slightly more capacity than depth-1).
    learning_rate:
        Shrinkage on each learner's vote weight.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 2,
        learning_rate: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1 or max_depth < 1 or learning_rate <= 0:
            raise ConfigError("invalid AdaBoost parameters")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.seed = seed
        self.learners_: list[DecisionTreeClassifier] = []
        self.alphas_: list[float] = []
        self.classes_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ConfigError("X and y must be non-empty with matching N")
        self.classes_ = np.unique(y)
        k = len(self.classes_)
        n = X.shape[0]
        w = np.full(n, 1.0 / n)
        self.learners_, self.alphas_ = [], []
        for round_idx in range(self.n_estimators):
            learner = DecisionTreeClassifier(
                max_depth=self.max_depth, seed=self.seed
            )
            learner.fit(X, y, sample_weight=w)
            pred = learner.predict(X)
            miss = pred != y
            err = float(np.sum(w[miss]) / np.sum(w))
            if err <= 1e-12:
                # perfect learner: give it a large vote and stop
                self.learners_.append(learner)
                self.alphas_.append(10.0)
                break
            if err >= 1.0 - 1.0 / k:
                break  # no better than chance
            alpha = self.learning_rate * (np.log((1 - err) / err) + np.log(k - 1))
            self.learners_.append(learner)
            self.alphas_.append(float(alpha))
            w = w * np.exp(alpha * miss)
            w /= w.sum()
        if not self.learners_:
            # degenerate data (e.g. single class): fall back to one learner
            learner = DecisionTreeClassifier(max_depth=self.max_depth)
            learner.fit(X, y)
            self.learners_.append(learner)
            self.alphas_.append(1.0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.learners_ or self.classes_ is None:
            raise ConfigError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        votes = np.zeros((X.shape[0], len(self.classes_)))
        class_pos = {c: i for i, c in enumerate(self.classes_)}
        for learner, alpha in zip(self.learners_, self.alphas_):
            pred = learner.predict(X)
            for i, p in enumerate(pred):
                votes[i, class_pos[p]] += alpha
        return self.classes_[np.argmax(votes, axis=1)]
