"""End-to-end anomaly diagnosis pipeline (paper Sec. 5.1).

Offline phase: monitored runs with known anomaly labels are windowed and
summarised into statistical features.  Runtime phase: tree-based models
predict the root-cause label of unseen windows.  The evaluation mirrors the
paper: 3-fold cross-validation, per-class F1 (Fig. 9), and the random
forest's row-normalised confusion matrix (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analytics.adaboost import AdaBoostClassifier
from repro.analytics.crossval import cross_val_predict
from repro.analytics.features import extract_features, feature_names, windows
from repro.analytics.forest import RandomForestClassifier
from repro.analytics.metrics import (
    confusion_matrix,
    f1_scores,
    macro_f1,
    normalized_confusion,
)
from repro.analytics.tree import DecisionTreeClassifier
from repro.errors import ConfigError

#: the six diagnosis classes of Figs. 9-10
DIAGNOSIS_CLASSES = (
    "none",
    "memleak",
    "memeater",
    "cpuoccupy",
    "membw",
    "cachecopy",
)


@dataclass
class DiagnosisDataset:
    """Feature matrix + labels assembled from monitored runs.

    ``groups`` records which run each window came from, so the evaluation
    can split folds at run granularity (windows of one run are strongly
    correlated; splitting them across folds would leak).
    """

    X: np.ndarray
    y: np.ndarray
    feature_names: list[str] = field(default_factory=list)
    groups: np.ndarray | None = None

    @classmethod
    def from_runs(
        cls,
        runs: list[tuple[np.ndarray, str]],
        metrics: list[str],
        window: int = 45,
        stride: int | None = None,
    ) -> "DiagnosisDataset":
        """Build a dataset from ``(time_series_matrix, label)`` runs.

        Each run's (T, M) node matrix is sliced into ``window``-sample
        windows; every window becomes one labelled sample grouped by its
        run index.
        """
        xs, ys, gs = [], [], []
        for run_idx, (series, label) in enumerate(runs):
            for win in windows(series, window, stride):
                xs.append(extract_features(win))
                ys.append(label)
                gs.append(run_idx)
        if not xs:
            raise ConfigError("no windows produced — runs too short?")
        return cls(
            X=np.vstack(xs),
            y=np.asarray(ys),
            feature_names=feature_names(metrics),
            groups=np.asarray(gs),
        )

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    def class_counts(self) -> dict[str, int]:
        labels, counts = np.unique(self.y, return_counts=True)
        return dict(zip(labels.tolist(), counts.tolist()))


def default_models(seed: int | None = None) -> dict[str, Callable[[], object]]:
    """The paper's three classifiers."""
    return {
        "DecisionTree": lambda: DecisionTreeClassifier(max_depth=8),
        "AdaBoost": lambda: AdaBoostClassifier(n_estimators=40, max_depth=2, seed=seed),
        "RandomForest": lambda: RandomForestClassifier(n_estimators=40, seed=seed),
    }


@dataclass
class ModelReport:
    """Cross-validated evaluation of one classifier."""

    name: str
    f1_per_class: dict
    macro_f1: float
    confusion: np.ndarray
    labels: list


class DiagnosisPipeline:
    """Trains and evaluates the three classifiers on a dataset."""

    def __init__(
        self,
        models: dict[str, Callable[[], object]] | None = None,
        folds: int = 3,
        seed: int | None = None,
    ) -> None:
        if folds < 2:
            raise ConfigError("folds must be >= 2")
        self.models = models if models is not None else default_models(seed)
        self.folds = folds
        self.seed = seed

    def evaluate(self, dataset: DiagnosisDataset) -> dict[str, ModelReport]:
        """3-fold cross-validated report per model (Figs. 9-10 inputs)."""
        reports: dict[str, ModelReport] = {}
        label_order = [c for c in DIAGNOSIS_CLASSES if c in set(dataset.y.tolist())]
        extra = sorted(set(dataset.y.tolist()) - set(label_order))
        label_order += extra
        for name, factory in self.models.items():
            pred = cross_val_predict(
                factory,
                dataset.X,
                dataset.y,
                k=self.folds,
                seed=self.seed,
                groups=dataset.groups,
            )
            matrix, labels = confusion_matrix(dataset.y, pred, labels=label_order)
            reports[name] = ModelReport(
                name=name,
                f1_per_class=f1_scores(dataset.y, pred, labels=label_order),
                macro_f1=macro_f1(dataset.y, pred, labels=label_order),
                confusion=normalized_confusion(matrix),
                labels=labels,
            )
        return reports
