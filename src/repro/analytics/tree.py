"""CART decision-tree classifier (from scratch, numpy).

Binary splits on numeric features chosen by Gini impurity reduction, with
the usual regularisation knobs (depth, minimum split/leaf sizes) plus
``max_features`` and sample weighting so the same tree serves as the base
learner for the random forest and AdaBoost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.sim.rng import spawn_rng


@dataclass
class _Node:
    prediction: int
    proba: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(weighted_counts: np.ndarray) -> float:
    total = weighted_counts.sum()
    if total <= 0:
        return 0.0
    p = weighted_counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier:
    """Gini-based CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (None = unlimited).
    min_samples_split / min_samples_leaf:
        Minimum sample counts to attempt / keep a split.
    max_features:
        Features examined per split: None (all), "sqrt", or an int.
    seed:
        Seed for feature subsampling (only relevant with max_features).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        seed: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ConfigError("max_depth must be >= 1")
        if min_samples_split < 2 or min_samples_leaf < 1:
            raise ConfigError("min_samples_split >= 2 and min_samples_leaf >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None
        self._total_weight: float = 0.0

    # -- fitting -----------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ConfigError("X must be (N, F) and y (N,) with matching N")
        if X.shape[0] == 0:
            raise ConfigError("cannot fit on an empty dataset")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        w = (
            np.ones(X.shape[0])
            if sample_weight is None
            else np.asarray(sample_weight, dtype=float)
        )
        if w.shape != (X.shape[0],) or np.any(w < 0):
            raise ConfigError("sample_weight must be non-negative, shape (N,)")
        self._rng = spawn_rng(self.seed, "tree")
        self.feature_importances_ = np.zeros(self.n_features_)
        self._total_weight = float(w.sum())
        self._root = self._build(X, y_enc, w, depth=0)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        return self

    def _n_split_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return min(self.max_features, self.n_features_)
        raise ConfigError(f"bad max_features {self.max_features!r}")

    def _leaf(self, y: np.ndarray, w: np.ndarray) -> _Node:
        counts = np.bincount(y, weights=w, minlength=len(self.classes_))
        total = counts.sum()
        proba = counts / total if total > 0 else np.full_like(counts, 1.0 / len(counts))
        return _Node(prediction=int(np.argmax(counts)), proba=proba)

    def _build(self, X: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int) -> _Node:
        node = self._leaf(y, w)
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y.size < self.min_samples_split
            or np.unique(y).size == 1
        ):
            return node
        split = self._best_split(X, y, w)
        if split is None:
            return node
        feature, threshold, gain = split
        # mean-impurity-decrease importance, weighted by the node's share
        # of the training weight
        if self._total_weight > 0:
            self.feature_importances_[feature] += gain * (
                float(w.sum()) / self._total_weight
            )
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray
    ) -> tuple[int, float, float] | None:
        n_classes = len(self.classes_)
        n = y.size
        k = self._n_split_features()
        if k < self.n_features_:
            features = self._rng.choice(self.n_features_, size=k, replace=False)
        else:
            features = np.arange(self.n_features_)
        best: tuple[float, int, float] | None = None
        parent_counts = np.bincount(y, weights=w, minlength=n_classes)
        parent_impurity = _gini(parent_counts)
        total_w = parent_counts.sum()
        leaf = self.min_samples_leaf
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            xs, ys, ws = X[order, feature], y[order], w[order]
            # prefix-weighted class counts per candidate boundary
            onehot = np.zeros((n, n_classes))
            onehot[np.arange(n), ys] = ws
            prefix = np.cumsum(onehot, axis=0)
            # candidate split after position i (between xs[i] and xs[i+1]),
            # respecting the minimum leaf size
            boundaries = np.nonzero(xs[:-1] < xs[1:])[0]
            boundaries = boundaries[
                (boundaries + 1 >= leaf) & (n - boundaries - 1 >= leaf)
            ]
            if boundaries.size == 0:
                continue
            left = prefix[boundaries]  # (B, C)
            right = parent_counts[None, :] - left
            lw = left.sum(axis=1)
            rw = right.sum(axis=1)
            valid = (lw > 0) & (rw > 0)
            if not np.any(valid):
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gini_left = 1.0 - np.sum((left / lw[:, None]) ** 2, axis=1)
                gini_right = 1.0 - np.sum((right / rw[:, None]) ** 2, axis=1)
            impurity = (lw * gini_left + rw * gini_right) / total_w
            impurity[~valid] = np.inf
            gains = parent_impurity - impurity
            idx = int(np.argmax(gains))
            gain = float(gains[idx])
            if gain > 1e-12 and (best is None or gain > best[0]):
                i = int(boundaries[idx])
                threshold = float((xs[i] + xs[i + 1]) / 2.0)
                best = (gain, int(feature), threshold)
        if best is None:
            return None
        return best[1], best[2], best[0]

    # -- prediction ---------------------------------------------------------

    def _check_fitted(self) -> None:
        if self._root is None or self.classes_ is None:
            raise ConfigError("classifier is not fitted")

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        return self.classes_[np.array([self._walk(row).prediction for row in X])]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities in the order of ``classes_``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        return np.vstack([self._walk(row).proba for row in X])

    def _walk(self, row: np.ndarray) -> _Node:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
