"""Classification metrics: confusion matrix and per-class F1."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: list | None = None
) -> tuple[np.ndarray, list]:
    """Row-normalisable confusion matrix.

    Returns ``(matrix, labels)`` where ``matrix[i, j]`` counts samples of
    true class ``labels[i]`` predicted as ``labels[j]``.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ConfigError("y_true and y_pred must have the same shape")
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    pos = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[pos[t], pos[p]] += 1
    return matrix, list(labels)


def normalized_confusion(matrix: np.ndarray) -> np.ndarray:
    """Row-normalise a confusion matrix (rows with no samples stay zero)."""
    matrix = np.asarray(matrix, dtype=float)
    sums = matrix.sum(axis=1, keepdims=True)
    out = np.zeros_like(matrix)
    nonzero = sums[:, 0] > 0
    out[nonzero] = matrix[nonzero] / sums[nonzero]
    return out


def f1_scores(
    y_true: np.ndarray, y_pred: np.ndarray, labels: list | None = None
) -> dict:
    """Per-class F1 (harmonic mean of precision and recall)."""
    matrix, labels = confusion_matrix(y_true, y_pred, labels)
    out: dict = {}
    for i, label in enumerate(labels):
        tp = matrix[i, i]
        fp = matrix[:, i].sum() - tp
        fn = matrix[i, :].sum() - tp
        precision = tp / (tp + fp) if tp + fp > 0 else 0.0
        recall = tp / (tp + fn) if tp + fn > 0 else 0.0
        out[label] = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
    return out


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, labels: list | None = None) -> float:
    """Unweighted mean of per-class F1 (the paper's overall score)."""
    scores = f1_scores(y_true, y_pred, labels)
    return float(np.mean(list(scores.values()))) if scores else 0.0
