"""Structured text output for CLI-facing code.

Library modules must not call ``print()`` (lint rule RL007): embedding a
simulation inside a service or a test must stay silent unless the caller
asks for output.  :class:`OutputWriter` is the sanctioned sink — a thin
wrapper over a stream that resolves ``sys.stdout`` lazily, so pytest's
``capsys`` and callers that rebind ``sys.stdout`` keep working.
"""

from __future__ import annotations

import sys
from typing import IO, Iterable, Sequence


class OutputWriter:
    """Line-oriented writer for human-facing CLI output.

    ``stream=None`` (the default) resolves ``sys.stdout`` at write time
    rather than construction time; pass an explicit stream (e.g.
    ``io.StringIO``) to capture output programmatically.
    """

    def __init__(self, stream: IO[str] | None = None):
        self._stream = stream

    @property
    def stream(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stdout

    def line(self, text: str = "") -> None:
        """Write one line (a trailing newline is added)."""
        self.stream.write(f"{text}\n")

    def lines(self, rows: Iterable[str]) -> None:
        for row in rows:
            self.line(row)

    def table(
        self,
        header: Sequence[str],
        rows: Iterable[Sequence[str]],
        widths: Sequence[int],
        align: str = "<",
    ) -> None:
        """Fixed-width table: first column left-aligned, the rest ``align``."""
        specs = [f"{{:{'<' if i == 0 else align}{w}s}}" for i, w in enumerate(widths)]
        self.line(" ".join(spec.format(cell) for spec, cell in zip(specs, header)))
        for row in rows:
            self.line(" ".join(spec.format(cell) for spec, cell in zip(specs, row)))
