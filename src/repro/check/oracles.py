"""Differential oracles: paired paths that must agree byte-for-byte.

Every optimisation PR so far kept a reference path alive next to its
fast path — full resolve next to incremental, cold flow solves next to
the memo, serial sweeps next to ``--jobs N``, uninterrupted jobs next to
checkpoint/restart, and the legacy CLI spelling next to the experiment
registry.  Each oracle here runs one seeded scenario through both sides
and reports whether the results are byte-identical; the per-case
incremental/memo variants live in :mod:`repro.check.harness` (they reuse
the case fingerprint), while this module holds the oracles that need
machinery a single case cannot exercise.

All comparisons use ``float.hex()`` / fingerprint equality — "close
enough" is exactly the silent-divergence failure mode this subsystem
exists to catch.
"""

from __future__ import annotations

import io
from contextlib import redirect_stderr, redirect_stdout
from dataclasses import dataclass

from repro.apps.base import AppJob, CheckpointStore
from repro.apps.registry import get_app
from repro.check.generators import generate_cases
from repro.cluster.cluster import Cluster
from repro.parallel import run_trials


@dataclass(frozen=True)
class OracleResult:
    """Verdict of one differential oracle."""

    name: str
    ok: bool
    detail: str = ""


# -- parallel vs serial sweep -------------------------------------------------


def oracle_parallel_sweep(seed: int, cases: int = 3, jobs: int = 2) -> OracleResult:
    """``run_trials(jobs=N)`` must merge byte-identically to a serial run."""
    from repro.check.harness import fingerprint_case

    specs = generate_cases(cases, seed)
    serial = [fingerprint_case(spec) for spec in specs]
    parallel = run_trials(fingerprint_case, specs, jobs=jobs)
    if serial == parallel:
        return OracleResult("parallel_sweep", True)
    diverging = [
        spec.case_id for spec, s, p in zip(specs, serial, parallel) if s != p
    ]
    return OracleResult(
        "parallel_sweep",
        False,
        f"jobs={jobs} diverges from serial on cases {diverging}",
    )


# -- array backend vs object reference ----------------------------------------


def oracle_array_backend(
    seed: int, cases: int = 3, corpus: list | None = None
) -> OracleResult:
    """The numpy array backend must reproduce the object backend exactly.

    Every case (the pinned corpus, when given, plus ``cases`` freshly
    generated specs) runs twice on fresh clusters — once on the
    dict-based reference model with the heap event queue, once on
    :class:`~repro.cluster.ratemodel.ArrayRateModel` with the calendar
    queue and batched dispatch — and the final fingerprints must match
    byte-for-byte.  This is the oracle that licenses running production
    sweeps with ``--backend array``.
    """
    from repro.check.harness import _run_case

    specs = list(corpus or []) + generate_cases(cases, seed)
    diverging = []
    for spec in specs:
        reference = _run_case(spec, backend="object")
        vectorized = _run_case(spec, backend="array")
        if reference != vectorized:
            diverging.append(spec.case_id)
    if not diverging:
        return OracleResult("array_backend", True)
    return OracleResult(
        "array_backend",
        False,
        f"array backend diverges from object backend on cases {diverging}",
    )


# -- checkpoint/restart vs uninterrupted --------------------------------------


class _RecordingStore(CheckpointStore):
    """Checkpoint store that records the simulated instant of each commit.

    All ranks commit right after the barrier releases them, i.e. within
    one simulated instant, so the first commit of an iteration pins the
    exact time the whole BSP step completed.
    """

    def __init__(self, cluster: Cluster) -> None:
        super().__init__()
        self._cluster = cluster
        self.commit_times: dict[int, float] = {}

    def commit(self, iteration: int) -> None:
        super().commit(iteration)
        self.commit_times.setdefault(iteration, self._cluster.sim.now)


def _checkpoint_job(
    cluster: Cluster,
    seed: int,
    iterations: int,
    interval: int | None,
    store: CheckpointStore | None = None,
    start_iteration: int = 0,
    start: float = 0.0,
) -> AppJob:
    app = get_app("miniMD").scaled(iterations=iterations)
    return AppJob(
        app,
        cluster,
        nodes=[0, 1],
        ranks_per_node=2,
        start=start,
        seed=seed,
        checkpoint_interval=interval,
        checkpoint=store,
        start_iteration=start_iteration,
    )


def oracle_checkpoint_restart(
    seed: int, iterations: int = 8, interval: int = 2
) -> OracleResult:
    """A job killed and restarted from its checkpoint must finish at the
    exact simulated instant of the uninterrupted run.

    The uninterrupted run records the instant ``T_k`` at which iteration
    ``k`` globally committed (the barrier releases every rank at one
    timestamp).  Restarting the killed job at ``T_k`` with the same seed
    replays iterations ``k..n`` through identical arithmetic — the rank
    bodies skip their jitter streams forward — so the final event times
    must agree to the last bit.
    """
    name = "checkpoint_restart"
    # Uninterrupted reference run, with commit instants recorded.
    cluster_a = Cluster.voltrino(num_nodes=2)
    store_a = _RecordingStore(cluster_a)
    job_a = _checkpoint_job(cluster_a, seed, iterations, interval, store=store_a)
    job_a.run()
    end_a = max(p.end_time for p in job_a.procs)
    commits = sorted(store_a.commit_times)
    if not commits:
        return OracleResult(name, False, "reference run never committed")
    k = commits[len(commits) // 2]
    t_k = store_a.commit_times[k]
    next_points = [store_a.commit_times[c] for c in commits if c > k]
    t_next = min(next_points) if next_points else end_a
    t_kill = (t_k + t_next) / 2.0

    # Interrupted run: identical job, killed mid-flight after commit k.
    cluster_b = Cluster.voltrino(num_nodes=2)
    job_b = _checkpoint_job(cluster_b, seed, iterations, interval)
    job_b.launch()
    cluster_b.sim.run(until=t_kill)
    for proc in job_b.procs:
        if not proc.state.terminal:
            cluster_b.sim.kill(proc, reason="check: injected crash")
    if job_b.checkpoint.committed != k:
        return OracleResult(
            name,
            False,
            f"kill at t={t_kill!r} left committed="
            f"{job_b.checkpoint.committed}, expected {k}",
        )

    # Restart from the survivor's store at the commit instant.
    cluster_c = Cluster.voltrino(num_nodes=2)
    job_c = AppJob.restart_from(job_b, cluster=cluster_c, start=t_k)
    job_c.run()
    end_c = max(p.end_time for p in job_c.procs)
    if end_a.hex() == end_c.hex():
        return OracleResult(name, True)
    return OracleResult(
        name,
        False,
        f"uninterrupted end {end_a.hex()} != restarted end {end_c.hex()} "
        f"(restarted from iteration {k} at t={t_k!r})",
    )


def oracle_checkpoint_free(
    seed: int, iterations: int = 6, interval: int = 2
) -> OracleResult:
    """Zero-cost checkpointing must be exactly free: same runtime bytes."""
    cluster_plain = Cluster.voltrino(num_nodes=2)
    plain = _checkpoint_job(cluster_plain, seed, iterations, interval=None).run()
    cluster_ckpt = Cluster.voltrino(num_nodes=2)
    ckpt = _checkpoint_job(cluster_ckpt, seed, iterations, interval=interval).run()
    if plain.hex() == ckpt.hex():
        return OracleResult("checkpoint_free", True)
    return OracleResult(
        "checkpoint_free",
        False,
        f"runtime without checkpointing {plain.hex()} != with zero-cost "
        f"checkpointing {ckpt.hex()}",
    )


# -- streamed vs batch telemetry export ---------------------------------------


def _first_byte_diff(a: str, b: str) -> int:
    """Index of the first differing character (or the shorter length)."""
    for i, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            return i
    return min(len(a), len(b))


def oracle_stream_export(
    seed: int, cases: int = 2, corpus: list | None = None
) -> OracleResult:
    """Streaming writers must reproduce the batch exporters byte-for-byte.

    Every case (the pinned corpus plus ``cases`` generated specs) runs
    once with an :class:`~repro.obs.observability.Observability` handle
    attached and in-memory streaming sinks registered — JSONL trace,
    Chrome trace, and one metric stream per node.  After the run the
    streamed bytes are compared against the end-of-run exporters over the
    same collector/service.  Any drift means a record was flushed before
    its content was final, or the canonical completion order broke — the
    exact regression the bounded-memory pipeline must never ship with.
    """
    import json as json_mod

    from repro.check.generators import build_cluster, deploy_case
    from repro.monitoring.export import to_jsonl_text
    from repro.obs.export import chrome_trace, jsonl_lines
    from repro.obs.observability import Observability
    from repro.obs.stream import (
        ChromeStreamWriter,
        JsonlStreamWriter,
        MetricJsonlStreamWriter,
    )

    specs = list(corpus or []) + generate_cases(cases, seed)
    failures: list[str] = []
    for spec in specs:
        cluster = build_cluster(spec)
        obs = Observability(cluster).attach(end=spec.horizon)
        jsonl_buf, chrome_buf = io.StringIO(), io.StringIO()
        trace_sinks = [JsonlStreamWriter(jsonl_buf), ChromeStreamWriter(chrome_buf)]
        for sink in trace_sinks:
            obs.collector.add_sink(sink)
        service = obs.service
        assert service is not None
        metric_bufs: dict[str, io.StringIO] = {}
        for node in sorted(service.data):
            buf = io.StringIO()
            service.add_sink(
                MetricJsonlStreamWriter(buf, node, service.metric_names)
            )
            metric_bufs[node] = buf

        jobs = deploy_case(spec, cluster)
        stop = (lambda: all(job.finished for job in jobs)) if jobs else None
        cluster.sim.run(until=spec.horizon, stop_when=stop)
        obs.collector.finalize()
        for sink in trace_sinks:
            sink.close()

        batch_jsonl = "\n".join(jsonl_lines(obs.collector)) + "\n"
        streamed_jsonl = jsonl_buf.getvalue()
        if streamed_jsonl != batch_jsonl:
            failures.append(
                f"{spec.case_id}: jsonl drift at byte "
                f"{_first_byte_diff(streamed_jsonl, batch_jsonl)}"
            )
        batch_chrome = (
            json_mod.dumps(chrome_trace(obs.collector), sort_keys=True, indent=1)
            + "\n"
        )
        streamed_chrome = chrome_buf.getvalue()
        if streamed_chrome != batch_chrome:
            failures.append(
                f"{spec.case_id}: chrome drift at byte "
                f"{_first_byte_diff(streamed_chrome, batch_chrome)}"
            )
        if service.times:
            for node, buf in metric_bufs.items():
                batch_metrics = to_jsonl_text(service, node)
                if buf.getvalue() != batch_metrics:
                    failures.append(
                        f"{spec.case_id}: metric stream {node} drift at byte "
                        f"{_first_byte_diff(buf.getvalue(), batch_metrics)}"
                    )
    if not failures:
        return OracleResult("stream_export", True)
    return OracleResult(
        "stream_export",
        False,
        f"streamed exports diverge from batch: {'; '.join(failures)}",
    )


# -- registry vs legacy CLI ---------------------------------------------------


@dataclass(frozen=True)
class _ProbeResult:
    """Tiny renderable result for the CLI-equivalence probe."""

    runtime: float

    def render(self) -> str:
        return f"check probe runtime {self.runtime.hex()}"


def _run_check_probe(seed: int = 0) -> _ProbeResult:
    cluster = Cluster.voltrino(num_nodes=2)
    job = _checkpoint_job(cluster, seed, iterations=2, interval=None)
    return _ProbeResult(runtime=job.run())


def oracle_registry_cli(seed: int = 0) -> OracleResult:
    """``repro experiment X`` and the legacy ``repro X`` alias must print
    byte-identical stdout (the alias may add only a stderr warning)."""
    from repro.cli import experiment_main, main as cli_main
    from repro.experiments.registry import EXPERIMENT_REGISTRY, ExperimentSpec

    name = "check_probe"
    spec = ExperimentSpec(
        name,
        "internal probe for the registry-vs-CLI oracle",
        _run_check_probe,
        "CheckProbeResult",
        seed=seed,
    )
    EXPERIMENT_REGISTRY[name] = spec
    try:
        registry_out = io.StringIO()
        with redirect_stdout(registry_out):
            rc_registry = experiment_main([name, "--no-persist"])
        legacy_out = io.StringIO()
        with redirect_stdout(legacy_out), redirect_stderr(io.StringIO()):
            rc_legacy = cli_main([name, "--no-persist"])
    finally:
        EXPERIMENT_REGISTRY.pop(name, None)
    if rc_registry != 0 or rc_legacy != 0:
        return OracleResult(
            "registry_cli",
            False,
            f"exit codes differ or non-zero: registry={rc_registry} "
            f"legacy={rc_legacy}",
        )
    if registry_out.getvalue() == legacy_out.getvalue():
        return OracleResult("registry_cli", True)
    return OracleResult(
        "registry_cli",
        False,
        "stdout of `repro experiment check_probe` differs from the "
        "legacy `repro check_probe` spelling",
    )


# -- cached vs fresh results --------------------------------------------------


def oracle_result_cache(seed: int = 0) -> OracleResult:
    """Submitting the same (spec, seed) twice must simulate exactly once,
    and the cache-hit artefacts must be byte-identical to a fresh run's."""
    import tempfile
    from pathlib import Path

    from repro.api import Client
    from repro.experiments.registry import (
        EXPERIMENT_REGISTRY,
        ExperimentSpec,
        persist_result,
    )

    calls: list[int] = []

    def probe_runner(seed: int = seed) -> _ProbeResult:
        calls.append(seed)
        return _run_check_probe(seed)

    name = "cache_probe"
    spec = ExperimentSpec(
        name,
        "internal probe for the result-cache oracle",
        probe_runner,
        "CheckProbeResult",
        seed=seed,
    )
    EXPERIMENT_REGISTRY[name] = spec
    try:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            with Client(state_dir=root / "state") as client:
                first = client.submit(name)
                second = client.submit(name)
                client.wait()
                s1 = client.status(first.job_id)
                s2 = client.status(second.job_id)
                if len(calls) != 1:
                    return OracleResult(
                        "result_cache",
                        False,
                        f"two equal submissions ran the simulation "
                        f"{len(calls)} times (want exactly 1)",
                    )
                if s1.state != "done" or s2.state != "done":
                    return OracleResult(
                        "result_cache",
                        False,
                        f"jobs did not finish: {s1.state}/{s2.state} "
                        f"({s1.reason or s2.reason})",
                    )
                if s1.cached or not s2.cached:
                    return OracleResult(
                        "result_cache",
                        False,
                        f"cache flags wrong: first cached={s1.cached} "
                        f"(want False), second cached={s2.cached} (want True)",
                    )
                fresh_txt = client.persist(first.job_id, root / "fresh")
                hit_txt = client.persist(second.job_id, root / "hit")
            direct_txt = persist_result(_run_check_probe(seed), root / "direct")
            for label, archived in (("fresh", fresh_txt), ("cache-hit", hit_txt)):
                for suffix in ("", ".manifest.json"):
                    a = Path(str(archived).replace(".txt", suffix or ".txt"))
                    b = Path(str(direct_txt).replace(".txt", suffix or ".txt"))
                    if a.read_bytes() != b.read_bytes():
                        return OracleResult(
                            "result_cache",
                            False,
                            f"{label} artefact {a.name} differs from a "
                            f"direct run's",
                        )
    finally:
        EXPERIMENT_REGISTRY.pop(name, None)
    return OracleResult("result_cache", True)


# -- trace record/replay vs native execution ----------------------------------


def _mix_workload(cluster: Cluster):
    """A combined network+storage workload with live metric sampling.

    miniGhost ranks exchange halos over the star network while an IOR
    client streams against the NFS appliance — the mixed case whose
    metric series must survive a record/replay round trip bit-for-bit.
    """
    from repro.apps.ior import IORBenchmark
    from repro.monitoring import MetricService

    service = MetricService(cluster)
    service.attach(end=600.0)
    app = get_app("miniGhost").scaled(iterations=6)
    job = AppJob(app, cluster, nodes=[0, 1, 2], ranks_per_node=2, seed=7)
    job.launch()
    IORBenchmark(
        fs="nfs", file_bytes=40_000_000, access_files=50, demand_bw=200_000_000
    ).launch(cluster, "node3", start=1.0)
    return service


def oracle_trace_replay(seed: int) -> OracleResult:
    """Record-then-replay must be byte-identical to native execution.

    Three claims, each checked on both simulation backends where a
    replay is involved:

    * **transparency** — recording a registry experiment leaves its
      result artefacts byte-identical to an unrecorded run (one
      network-bound experiment, one storage-bound);
    * **replay identity** — replaying a clean recording reproduces the
      recorded cluster's state fingerprint exactly, and the canonical
      JSONL round-trips losslessly on the way;
    * **metric series** — for a mixed workload with a live
      :class:`~repro.monitoring.service.MetricService`, the replay's
      run manifest (which checksums every sampled series) matches the
      native run's byte-for-byte;

    plus the cache claim: two service submissions of the same trace
    bytes from *different paths* are one simulation (the canonicalize
    hook keys the fingerprint on the trace sha256, not the filename).
    """
    import tempfile
    from pathlib import Path

    from repro.api import Client
    from repro.check.harness import fingerprint_cluster
    from repro.experiments.registry import render_artifacts, resolve_job_spec
    from repro.monitoring import MetricService
    from repro.obs.manifest import build_manifest, manifest_text
    from repro.traces import (
        TraceReplayApp,
        build_replay_cluster,
        dump_trace,
        dumps,
        generate_trace,
        loads,
        record_experiment,
        recording_session,
        replay_fingerprint,
    )

    name = "trace_replay"
    failures: list[str] = []

    # Transparency + replay identity on registry experiments.
    experiments = (
        ("table2", {"iterations": 2, "ranks_per_node": 2}),
        ("fig7", {"anomaly_nodes": 1, "instances_per_node": 1, "horizon": 250.0}),
    )
    for exp_name, overrides in experiments:
        spec = resolve_job_spec(exp_name)
        request = spec.normalize(overrides=overrides)
        plain = render_artifacts(spec.run_request(request))
        recorded = record_experiment(exp_name, overrides=overrides)
        taped = render_artifacts(recorded.result)
        if (plain.text, plain.manifest_text) != (taped.text, taped.manifest_text):
            failures.append(f"{exp_name}: recording changed the result artefacts")
        clean = recorded.clean_traces()
        if not clean:
            failures.append(f"{exp_name}: no clean recordings")
            continue
        recording = clean[0]
        if loads(dumps(recording.trace)) != recording.trace:
            failures.append(f"{exp_name}: canonical JSONL round-trip is lossy")
        for backend in ("object", "array"):
            if replay_fingerprint(recording.trace, backend=backend) != recording.fingerprint:
                failures.append(
                    f"{exp_name}: {backend} replay diverges from the recording"
                )

    # Metric-series identity on the mixed workload.
    def mix_manifest(service) -> str:
        fp = fingerprint_cluster(service.cluster)
        return manifest_text(
            build_manifest(name="trace_mix", service=service, results_text=fp)
        )

    with recording_session("mix") as session:
        cluster = Cluster.chameleon(num_nodes=4)
        service = _mix_workload(cluster)
        cluster.sim.run(until=120.0)
    native = mix_manifest(service)
    mixes = session.clean_traces()
    if not mixes:
        taints = [t for rec in session.traces for t in rec.taints]
        failures.append(f"mix: recording tainted ({'; '.join(taints)})")
    else:
        mix = mixes[0]
        for backend in ("object", "array"):
            replay_cluster = build_replay_cluster(mix.trace, backend=backend)
            replay_service = MetricService(replay_cluster)
            replay_service.attach(end=600.0)
            TraceReplayApp(mix.trace, replay_cluster, tickers=False).run()
            if mix_manifest(replay_service) != native:
                failures.append(
                    f"mix: {backend} replay manifest (metric series) diverges"
                )

    # Content-addressed caching: same trace bytes, different paths.
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        trace = generate_trace("ai_training", seed=seed, ranks=3, steps=2)
        path_a, path_b = root / "a" / "t.jsonl", root / "b" / "t.jsonl"
        for path in (path_a, path_b):
            path.parent.mkdir()
            dump_trace(trace, path)
        with Client(state_dir=root / "state") as client:
            first = client.submit("trace_replay", overrides={"trace": str(path_a)})
            second = client.submit("trace_replay", overrides={"trace": str(path_b)})
            client.wait()
            s1, s2 = client.status(first.job_id), client.status(second.job_id)
            if s1.state != "done" or s2.state != "done":
                failures.append(
                    f"cache: jobs did not finish ({s1.state}/{s2.state}: "
                    f"{s1.reason or s2.reason})"
                )
            elif s1.cached or not s2.cached:
                failures.append(
                    f"cache: same trace bytes at two paths simulated twice "
                    f"(first cached={s1.cached}, second cached={s2.cached})"
                )

    if not failures:
        return OracleResult(name, True)
    return OracleResult(name, False, "; ".join(failures))


def run_global_oracles(seed: int, corpus: list | None = None) -> list[OracleResult]:
    """The oracles a fuzz run always executes once, in a fixed order.

    ``corpus`` (pinned :class:`CaseSpec` list, when the fuzz run has one)
    is replayed through the array-backend oracle so backend equivalence
    is pinned on exactly the cases CI replays.
    """
    return [
        oracle_parallel_sweep(seed),
        oracle_array_backend(seed, corpus=corpus),
        oracle_checkpoint_restart(seed),
        oracle_checkpoint_free(seed),
        oracle_registry_cli(seed),
        oracle_result_cache(seed),
        oracle_stream_export(seed, corpus=corpus),
        oracle_trace_replay(seed),
    ]
