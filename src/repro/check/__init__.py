"""repro.check: runtime invariants, differential oracles, and fuzzing.

Three layers keep the simulator's fast paths honest (see
docs/TESTING.md):

* :class:`InvariantChecker` — attach/detach runtime conservation checks
  (``sim.check``), zero-cost when detached;
* differential oracles (:mod:`repro.check.oracles` and the per-case
  variants in :mod:`repro.check.harness`) — byte-identity between each
  optimisation and its reference semantics;
* the seeded fuzz harness (:func:`run_fuzz`, ``repro check``) — random
  scenarios from :mod:`repro.check.generators`, shrinking-by-halving,
  and a pinned corpus replayed by CI.
"""

from repro.check.corpus import load_corpus, save_corpus
from repro.check.generators import (
    AnomalyCase,
    AppCase,
    CaseSpec,
    FaultCase,
    build_cluster,
    deploy_case,
    generate_case,
    generate_cases,
    shrink_candidates,
)
from repro.check.harness import (
    CaseOutcome,
    FuzzReport,
    evaluate_case,
    fingerprint_case,
    fingerprint_cluster,
    run_fuzz,
    shrink_failing,
)
from repro.check.invariants import (
    DEFAULT_TOLERANCE,
    InvariantChecker,
    Violation,
    assert_max_min,
)
from repro.check.oracles import (
    OracleResult,
    oracle_array_backend,
    oracle_checkpoint_free,
    oracle_checkpoint_restart,
    oracle_parallel_sweep,
    oracle_registry_cli,
    run_global_oracles,
)

__all__ = [
    "AnomalyCase",
    "AppCase",
    "CaseOutcome",
    "CaseSpec",
    "DEFAULT_TOLERANCE",
    "FaultCase",
    "FuzzReport",
    "InvariantChecker",
    "OracleResult",
    "Violation",
    "assert_max_min",
    "build_cluster",
    "deploy_case",
    "evaluate_case",
    "fingerprint_case",
    "fingerprint_cluster",
    "generate_case",
    "generate_cases",
    "load_corpus",
    "oracle_array_backend",
    "oracle_checkpoint_free",
    "oracle_checkpoint_restart",
    "oracle_parallel_sweep",
    "oracle_registry_cli",
    "run_fuzz",
    "run_global_oracles",
    "save_corpus",
    "shrink_candidates",
    "shrink_failing",
]
