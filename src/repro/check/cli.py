"""The ``repro check`` subcommand: seeded fuzzing with a pinned corpus.

::

    python -m repro check                      # defaults: 25 cases, seed 0
    python -m repro check --cases 50 --seed 0
    python -m repro check --corpus tests/check/corpus.json --cases 5
    python -m repro check --save-corpus tests/check/corpus.json --cases 8

Exit status 0 means every invariant held and every differential oracle
agreed byte-for-byte; 1 means at least one violation or divergence (the
report includes the shrunk counterexample specs).  The report itself is
deterministic: two invocations with the same arguments print identical
bytes, which CI exploits by diffing a double run.
"""

from __future__ import annotations

import argparse

from repro.errors import CheckError
from repro.output import OutputWriter


def build_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Fuzz the simulator: runtime invariants plus "
        "differential oracles over randomly generated scenarios.",
    )
    parser.add_argument(
        "--cases", type=int, default=25, help="fresh cases to generate (default 25)"
    )
    parser.add_argument("--seed", type=int, default=0, help="case-stream seed")
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="FILE",
        help="replay the pinned corpus before the fresh batch",
    )
    parser.add_argument(
        "--trace-corpus",
        default=None,
        metavar="DIR",
        help="also replay every pinned workload trace (*.jsonl) in DIR "
        "on both backends and require identical fingerprints",
    )
    parser.add_argument(
        "--save-corpus",
        default=None,
        metavar="FILE",
        help="write the generated cases out as a corpus file and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for case evaluation (results are identical "
        "for every value; default 1 = serial)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing cases without shrinking them",
    )
    parser.add_argument(
        "--no-oracles",
        action="store_true",
        help="skip the global oracles (parallel sweep, checkpoint, CLI)",
    )
    return parser


def check_main(argv: list[str]) -> int:
    from repro.check.corpus import load_corpus, save_corpus
    from repro.check.generators import generate_cases
    from repro.check.harness import run_fuzz

    args = build_check_parser().parse_args(argv)
    out = OutputWriter()
    if args.save_corpus is not None:
        specs = generate_cases(args.cases, args.seed)
        path = save_corpus(args.save_corpus, specs)
        out.line(f"wrote {len(specs)} cases to {path}")
        return 0
    try:
        corpus = None if args.corpus is None else load_corpus(args.corpus)
        report = run_fuzz(
            cases=args.cases,
            seed=args.seed,
            corpus=corpus,
            jobs=args.jobs,
            shrink=not args.no_shrink,
            with_oracles=not args.no_oracles,
            trace_corpus=args.trace_corpus,
        )
    except CheckError as err:
        out.line(f"error: {err}")
        return 1
    out.line(report.render())
    return 0 if report.ok else 1
