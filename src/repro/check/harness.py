"""The fuzzing harness: run cases through paired paths and compare.

The harness turns a :class:`~repro.check.generators.CaseSpec` into a
**fingerprint** — a SHA-256 over every process's final state, timing, and
counters rendered with ``float.hex()`` — and asserts that the fingerprint
is byte-identical across paired implementations of the same semantics:

* incremental rate resolution vs the from-scratch reference
  (``ClusterRateModel.incremental = False``),
* memoized flow solves vs cold re-solves (``FlowSolver.memoize = False``).

The fast path additionally runs with an :class:`InvariantChecker`
attached in ``record`` mode, so one evaluation yields both the
conservation audit and the differential verdicts.  Failing cases are
shrunk by halving (see
:func:`~repro.check.generators.shrink_candidates`) until no smaller
variant still fails.

Fingerprints key on process *names* (with an occurrence index for
same-named processes), never on pids: the pid counter is a process-wide
global, so pids differ between runs inside one interpreter while names
and spawn order do not.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.check.generators import (
    CaseSpec,
    build_cluster,
    deploy_case,
    generate_cases,
    shrink_candidates,
)
from repro.check.invariants import InvariantChecker
from repro.cluster.cluster import Cluster

#: evaluation budget for shrinking one failing case
SHRINK_BUDGET = 24


def _hex(value: float | None) -> str | None:
    return None if value is None else float(value).hex()


def fingerprint_cluster(cluster: Cluster) -> str:
    """Canonical digest of a finished simulation's observable outcome."""
    name_counts: dict[str, int] = {}
    entries = []
    for proc in cluster.sim.processes:
        occurrence = name_counts.get(proc.name, 0)
        name_counts[proc.name] = occurrence + 1
        entries.append(
            {
                "name": proc.name,
                "occurrence": occurrence,
                "node": proc.node,
                "core": proc.core,
                "state": proc.state.name,
                "start": _hex(proc.start_time),
                "end": _hex(proc.end_time),
                "exit": proc.exit_reason,
                "counters": {
                    key: float(value).hex()
                    for key, value in sorted(proc.counters.items())
                },
            }
        )
    payload = {"now": _hex(cluster.sim.now), "procs": entries}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_case(
    spec: CaseSpec,
    incremental: bool = True,
    memoize: bool = True,
    checker: InvariantChecker | None = None,
    backend: str | None = None,
) -> str:
    """Materialise, run, and fingerprint one case on a fresh cluster."""
    cluster = build_cluster(spec, backend=backend)
    cluster.model.incremental = incremental
    if cluster.model.flow_solver is not None:
        cluster.model.flow_solver.memoize = memoize
    if checker is not None:
        checker.attach(cluster)
    jobs = deploy_case(spec, cluster)
    stop = (lambda: all(job.finished for job in jobs)) if jobs else None
    cluster.sim.run(until=spec.horizon, stop_when=stop)
    fingerprint = fingerprint_cluster(cluster)
    if checker is not None:
        checker.detach()
    return fingerprint


def fingerprint_case(spec: CaseSpec) -> str:
    """Default-path fingerprint of one case.

    A module-level pure function of its payload, so
    :func:`repro.parallel.run_trials` can fan specs out over worker
    processes (the parallel-vs-serial oracle does exactly that).
    """
    return _run_case(spec)


@dataclass(frozen=True)
class CaseOutcome:
    """Everything one evaluation learned about a case."""

    spec: CaseSpec
    fingerprint: str
    violations: tuple[str, ...]
    mismatches: tuple[tuple[str, str], ...]
    hook_counts: tuple[tuple[str, int], ...]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.mismatches


def evaluate_case(spec: CaseSpec) -> CaseOutcome:
    """Run one case through the fast path and both reference paths."""
    checker = InvariantChecker(mode="record")
    fast = _run_case(spec, checker=checker)
    mismatches = []
    full = _run_case(spec, incremental=False)
    if fast != full:
        mismatches.append(
            ("incremental_resolve", f"fast {fast[:16]}.. != full {full[:16]}..")
        )
    cold = _run_case(spec, memoize=False)
    if fast != cold:
        mismatches.append(
            ("flow_memo", f"memoized {fast[:16]}.. != cold {cold[:16]}..")
        )
    return CaseOutcome(
        spec=spec,
        fingerprint=fast,
        violations=tuple(v.render() for v in checker.violations),
        mismatches=tuple(mismatches),
        hook_counts=tuple(sorted(checker.hook_counts.items())),
    )


def shrink_failing(spec: CaseSpec, budget: int = SHRINK_BUDGET) -> CaseOutcome:
    """Greedily halve a failing case while it keeps failing.

    Returns the outcome of the smallest still-failing variant found
    within ``budget`` evaluations (the original spec's outcome if no
    candidate reproduces the failure).
    """
    current = evaluate_case(spec)
    evals = 0
    progress = True
    while progress and evals < budget:
        progress = False
        for candidate in shrink_candidates(current.spec):
            evals += 1
            outcome = evaluate_case(candidate)
            if not outcome.ok:
                current = outcome
                progress = True
                break
            if evals >= budget:
                break
    return current


@dataclass(frozen=True)
class FuzzReport:
    """Deterministic summary of one fuzzing run."""

    seed: int
    generated: int
    corpus_count: int
    outcomes: tuple[CaseOutcome, ...]
    oracles: tuple["OracleResult", ...]
    shrunk: tuple[CaseOutcome, ...]
    traces: tuple["OracleResult", ...] = ()

    @property
    def ok(self) -> bool:
        return (
            all(o.ok for o in self.outcomes)
            and all(o.ok for o in self.oracles)
            and all(t.ok for t in self.traces)
        )

    def render(self) -> str:
        """Byte-identical across runs of the same inputs: no wallclock,
        no environment, only simulation outcomes."""
        lines = [
            f"repro check: seed={self.seed} corpus={self.corpus_count} "
            f"generated={self.generated} cases={len(self.outcomes)}"
        ]
        totals: dict[str, int] = {}
        for outcome in self.outcomes:
            for family, count in outcome.hook_counts:
                totals[family] = totals.get(family, 0) + count
        hooks = "  ".join(f"{k}={v}" for k, v in sorted(totals.items()))
        lines.append(f"invariant hooks fired: {hooks or 'none'}")
        failing = [o for o in self.outcomes if not o.ok]
        lines.append(
            f"cases: {len(self.outcomes) - len(failing)} ok, {len(failing)} failing"
        )
        for oracle in self.oracles:
            status = "ok" if oracle.ok else f"FAIL ({oracle.detail})"
            lines.append(f"oracle {oracle.name}: {status}")
        for verdict in self.traces:
            status = "ok" if verdict.ok else f"FAIL ({verdict.detail})"
            lines.append(f"{verdict.name}: {status}")
        for outcome in failing:
            lines.append(f"FAIL {outcome.spec.describe()}")
            for violation in outcome.violations:
                lines.append(f"  violation: {violation}")
            for name, detail in outcome.mismatches:
                lines.append(f"  mismatch[{name}]: {detail}")
        for outcome in self.shrunk:
            lines.append(f"shrunk {outcome.spec.describe()}")
            for violation in outcome.violations:
                lines.append(f"  violation: {violation}")
            for name, detail in outcome.mismatches:
                lines.append(f"  mismatch[{name}]: {detail}")
            lines.append(f"  spec: {outcome.spec.to_json()}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def replay_trace_corpus(directory) -> list["OracleResult"]:
    """Replay every pinned ``*.jsonl`` trace under ``directory``.

    Each trace must load (which verifies its sha256 trailer), pass full
    validation, and replay to the *same* fingerprint on the object and
    array backends — the trace-layer half of backend equivalence, pinned
    on committed workloads rather than generated cases.
    """
    from pathlib import Path

    from repro.check.oracles import OracleResult
    from repro.errors import CheckError, ReproError
    from repro.traces import load_trace, replay_fingerprint

    paths = sorted(Path(directory).glob("*.jsonl"))
    if not paths:
        raise CheckError(f"trace corpus {directory} contains no .jsonl traces")
    results: list[OracleResult] = []
    for path in paths:
        name = f"trace corpus {path.stem}"
        try:
            trace = load_trace(path).validate()
            reference = replay_fingerprint(trace, backend="object")
            vectorized = replay_fingerprint(trace, backend="array")
        except ReproError as err:
            results.append(OracleResult(name, False, str(err)))
            continue
        if reference != vectorized:
            results.append(
                OracleResult(
                    name, False, "object/array replay fingerprints diverge"
                )
            )
        else:
            results.append(OracleResult(name, True))
    return results


def run_fuzz(
    cases: int,
    seed: int,
    corpus: list[CaseSpec] | None = None,
    jobs: int = 1,
    shrink: bool = True,
    with_oracles: bool = True,
    trace_corpus: str | None = None,
) -> FuzzReport:
    """Replay ``corpus`` plus ``cases`` freshly generated specs.

    ``jobs > 1`` fans the per-case evaluations out over worker processes
    (via :func:`repro.parallel.run_trials`, so results are identical for
    every job count).  ``with_oracles`` additionally runs the global
    differential oracles — parallel-vs-serial sweep, array-vs-object
    backend equivalence (replaying the pinned corpus), checkpoint/restart
    equivalence, registry-vs-legacy CLI, streamed-vs-batch telemetry
    export, and trace record/replay identity — which exercise machinery a
    single case cannot.  ``trace_corpus`` names a directory of pinned
    workload traces additionally replayed on both backends
    (:func:`replay_trace_corpus`).
    """
    from repro.check import oracles as oracle_mod
    from repro.parallel import run_trials

    specs = list(corpus or []) + generate_cases(cases, seed)
    outcomes = run_trials(evaluate_case, specs, jobs=jobs)
    shrunk = []
    if shrink:
        for outcome in outcomes:
            if not outcome.ok:
                shrunk.append(shrink_failing(outcome.spec))
    oracle_results: list[oracle_mod.OracleResult] = []
    if with_oracles:
        oracle_results.extend(oracle_mod.run_global_oracles(seed, corpus=corpus))
    trace_results: list[oracle_mod.OracleResult] = []
    if trace_corpus is not None:
        trace_results.extend(replay_trace_corpus(trace_corpus))
    return FuzzReport(
        seed=seed,
        generated=cases,
        corpus_count=len(corpus or []),
        outcomes=tuple(outcomes),
        oracles=tuple(oracle_results),
        shrunk=tuple(shrunk),
        traces=tuple(trace_results),
    )
