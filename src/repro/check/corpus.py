"""Pinned fuzz corpus: JSON round-trip of case specs.

The corpus file (``tests/check/corpus.json``) pins a set of
:class:`~repro.check.generators.CaseSpec` values that CI replays on
every run, in addition to a small fresh batch.  Cases that once exposed
a divergence get appended here (shrunk form) so the regression stays
covered forever.  The format is versioned, and specs round-trip through
:meth:`CaseSpec.to_dict` / :meth:`CaseSpec.from_dict` so the file stays
hand-editable::

    {"version": 1, "cases": [{"case_id": 0, "seed": 0, ...}, ...]}
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.check.generators import CaseSpec
from repro.errors import CheckError

CORPUS_VERSION = 1


def load_corpus(path: str | Path) -> list[CaseSpec]:
    """Read a corpus file; raises :class:`CheckError` on malformed input."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise CheckError(f"corpus file not found: {path}") from None
    except json.JSONDecodeError as err:
        raise CheckError(f"corpus {path} is not valid JSON: {err}") from None
    if not isinstance(data, dict) or data.get("version") != CORPUS_VERSION:
        raise CheckError(
            f"corpus {path} has unsupported version "
            f"{data.get('version') if isinstance(data, dict) else data!r} "
            f"(expected {CORPUS_VERSION})"
        )
    cases = data.get("cases")
    if not isinstance(cases, list):
        raise CheckError(f"corpus {path} lacks a 'cases' list")
    return [CaseSpec.from_dict(case) for case in cases]


def save_corpus(path: str | Path, specs: list[CaseSpec]) -> Path:
    """Write a corpus file (sorted keys, trailing newline: diff-friendly)."""
    path = Path(path)
    payload = {
        "version": CORPUS_VERSION,
        "cases": [spec.to_dict() for spec in specs],
    }
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return path
