"""Runtime invariant checking for the simulator.

An :class:`InvariantChecker` attaches to a cluster the way
:class:`repro.obs.Observability` does: it plants itself as ``sim.check``
(plus ``flow_solver.check`` / ``filesystem.check``) and wraps the rate
model's memory-sharing function.  Every hook site in the engine and the
subsystem solvers is guarded by an ``is not None`` check, so a detached
simulation pays one attribute read — the same pay-for-what-you-use
contract as ``sim.obs`` and ``cluster.faults``.

The rules (CK001..CK011) assert the conservation and bound properties
the physical models promise:

=======  ==============================================================
CK001    simulated clocks are monotone; events dispatch in causal order
CK002    resolved speeds are finite and within ``[0, 1]``
CK003    every running process is priced by each resolve
CK004    remaining segment work never projects below zero
CK005    fault-state consistency: no speed granted on a crashed node,
         and the :class:`~repro.faults.state.FaultState` audit is clean
CK006    per-process memory traffic respects the single-core limit
CK007    a flow's adaptive sub-flow split sums back to its demand
CK008    granted traffic on every link fits under the link capacity
CK009    a flow's grant is within ``[0, demand]``
CK010    filesystem grants respect pool capacities and ratio bounds
CK011    the memory share function obeys the max-min fairness contract
=======  ==============================================================

Violations either raise :class:`~repro.errors.CheckError` immediately
(``mode="raise"``, the default — the failing simulated instant is in the
message) or accumulate on :attr:`InvariantChecker.violations`
(``mode="record"``, used by the fuzzing harness to gather everything a
case violates in one pass).

Checks are strictly read-only: an attached checker never changes what a
simulation computes, so fingerprints taken with and without one attached
are byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import CheckError
from repro.resources.fairshare import max_min_fair_share

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.network.flows import FlowRequest, FlowResult, FlowSolver, _SubFlow
    from repro.sim.engine import Simulator
    from repro.sim.process import IODemand
    from repro.storage.filesystem import IOGrant, SharedFilesystem

#: default relative slack for floating-point comparisons.  The solvers
#: are exact up to round-off; 1e-6 is orders of magnitude above the
#: accumulation error of any realistic case and orders below any real
#: conservation bug.
DEFAULT_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation."""

    time: float
    rule: str
    detail: str

    def render(self) -> str:
        return f"t={self.time:.9g} {self.rule}: {self.detail}"


def _exceeds(value: float, bound: float, tol: float) -> bool:
    """True when ``value`` is above ``bound`` beyond mixed abs/rel slack."""
    return value > bound + tol * max(1.0, abs(bound))


def assert_max_min(
    capacity: float,
    demands: Sequence[float],
    grants: Sequence[float],
    tol: float = DEFAULT_TOLERANCE,
) -> None:
    """Assert the three max-min fairness invariants (raises CheckError).

    * no grant exceeds its demand,
    * grants sum to ``min(capacity, sum(demands))``,
    * any unsatisfied demand's grant is >= every other grant.

    Shared by rule CK011 and the property tests in ``tests/check``.
    """
    if len(demands) != len(grants):
        raise CheckError(
            f"max-min: {len(demands)} demands but {len(grants)} grants"
        )
    for i, (demand, grant) in enumerate(zip(demands, grants)):
        if grant < -tol or _exceeds(grant, demand, tol):
            raise CheckError(
                f"max-min: grant[{i}]={grant!r} outside [0, demand={demand!r}]"
            )
    expected = min(float(capacity), float(sum(demands)))
    total = float(sum(grants))
    if abs(total - expected) > tol * max(1.0, abs(expected)):
        raise CheckError(
            f"max-min: grants sum to {total!r}, expected "
            f"min(capacity, total demand) = {expected!r}"
        )
    slack = tol * max(1.0, abs(capacity))
    unsatisfied = [
        g for d, g in zip(demands, grants) if g < d - slack
    ]
    if unsatisfied:
        floor = min(unsatisfied)
        peak = max(grants)
        if peak > floor + slack:
            raise CheckError(
                f"max-min: an unsatisfied demand holds {floor!r} while "
                f"another flow holds {peak!r} (not max-min fair)"
            )


class InvariantChecker:
    """Runtime conservation/bound checking for one cluster simulation.

    Parameters
    ----------
    tolerance:
        Mixed absolute/relative slack for float comparisons.
    mode:
        ``"raise"`` aborts on the first violation with a
        :class:`~repro.errors.CheckError`; ``"record"`` accumulates
        :class:`Violation` records on :attr:`violations` and lets the
        simulation continue (the fuzz harness's choice).
    """

    def __init__(
        self, tolerance: float = DEFAULT_TOLERANCE, mode: str = "raise"
    ) -> None:
        if mode not in ("raise", "record"):
            raise CheckError(f"mode must be 'raise' or 'record', got {mode!r}")
        if tolerance < 0:
            raise CheckError("tolerance must be >= 0")
        self.tolerance = tolerance
        self.mode = mode
        self.violations: list[Violation] = []
        self.cluster: "Cluster | None" = None
        self._attached = False
        self._orig_share_fn = None
        #: last dispatched event time, for the causal-order check
        self._last_event_time = -math.inf
        #: hook invocations per rule family (proof the checker actually ran)
        self.hook_counts: dict[str, int] = {}

    # -- attachment ---------------------------------------------------------

    def attach(self, cluster: "Cluster") -> "InvariantChecker":
        """Plant the checker on every hook site of ``cluster``."""
        if self._attached:
            raise CheckError("checker is already attached")
        if cluster.sim.check is not None:
            raise CheckError("cluster already has an invariant checker attached")
        self.cluster = cluster
        cluster.sim.check = self
        model = cluster.model
        if model.flow_solver is not None:
            model.flow_solver.check = self
        for fs in cluster.filesystems.values():
            fs.check = self
        # Wrap the memory share function so CK011 sees the raw
        # (capacity, demands) -> grants triple of every socket solve.
        # The wrapper forwards the wrapped function's own result, so the
        # simulation's arithmetic is untouched.
        self._orig_share_fn = model.share_fn
        orig = model.share_fn

        def _checked_share(capacity, demands):
            grants = orig(capacity, demands)
            self._on_share(capacity, demands, grants, orig)
            return grants

        model.share_fn = _checked_share
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove every hook, restoring the zero-overhead fast path."""
        if not self._attached:
            raise CheckError("checker is not attached")
        cluster = self.cluster
        assert cluster is not None
        cluster.sim.check = None
        if cluster.model.flow_solver is not None:
            cluster.model.flow_solver.check = None
        for fs in cluster.filesystems.values():
            fs.check = None
        cluster.model.share_fn = self._orig_share_fn
        self._orig_share_fn = None
        self._attached = False

    # -- reporting ----------------------------------------------------------

    def _report(self, rule: str, detail: str) -> None:
        time = self.cluster.sim.now if self.cluster is not None else math.nan
        violation = Violation(time=time, rule=rule, detail=detail)
        if self.mode == "raise":
            raise CheckError(violation.render())
        self.violations.append(violation)

    def _count(self, family: str) -> None:
        self.hook_counts[family] = self.hook_counts.get(family, 0) + 1

    # -- engine hooks --------------------------------------------------------

    def on_event(self, sim: "Simulator", time: float) -> None:
        """CK001 (dispatch side): events leave the queue in causal order."""
        self._count("event")
        if time < sim.now:
            self._report(
                "CK001",
                f"event scheduled at {time!r} dispatched after clock "
                f"reached {sim.now!r}",
            )
        if time < self._last_event_time:
            self._report(
                "CK001",
                f"event at {time!r} dispatched after event at "
                f"{self._last_event_time!r}",
            )
        self._last_event_time = max(self._last_event_time, time)

    def on_advance(self, sim: "Simulator", t: float) -> None:
        """CK001 (clock side) + CK004: advancing never overshoots work."""
        self._count("advance")
        dt = t - sim.now
        if dt < 0:
            self._report("CK001", f"clock moving backwards: {sim.now!r} -> {t!r}")
            return
        for proc in sim.running:
            if proc.remaining < 0:
                self._report(
                    "CK004",
                    f"{proc.name}: remaining work already negative "
                    f"({proc.remaining!r})",
                )
            work = proc.current.work if proc.current is not None else 1.0
            projected = proc.remaining - proc.speed * dt
            if projected < -self.tolerance * max(1.0, abs(work)):
                self._report(
                    "CK004",
                    f"{proc.name}: advance to t={t!r} projects remaining "
                    f"work {projected!r} < 0 (speed={proc.speed!r})",
                )

    def after_resolve(
        self,
        sim: "Simulator",
        speeds: dict[int, float],
        dirty: frozenset[int] | None,
    ) -> None:
        """CK002 + CK003 + CK005 + CK006 on every rate resolve."""
        self._count("resolve")
        tol = self.tolerance
        for pid, speed in speeds.items():
            if not math.isfinite(speed) or speed < 0 or _exceeds(speed, 1.0, tol):
                self._report(
                    "CK002",
                    f"pid {pid} ({sim.process(pid).name}): speed {speed!r} "
                    f"outside [0, 1]",
                )
        for proc in sim.running:
            if proc.pid not in speeds:
                self._report(
                    "CK003",
                    f"{proc.name}: running but unpriced by the resolve "
                    f"(dirty={sorted(dirty) if dirty is not None else None})",
                )
        cluster = self.cluster
        if cluster is None:
            return
        faults = cluster.faults
        if faults is not None:
            for problem in faults.check_invariants():
                self._report("CK005", problem)
            if faults.active:
                for proc in sim.running:
                    if faults.is_down(proc.node) and speeds.get(proc.pid, 0.0) > 0:
                        self._report(
                            "CK005",
                            f"{proc.name}: granted speed "
                            f"{speeds[proc.pid]!r} on crashed node {proc.node}",
                        )
        last_rates = cluster.model.last_rates
        for proc in sim.running:
            rates = last_rates.get(proc.pid)
            if not rates:
                continue
            core_bw = cluster.node(proc.node).spec.core_mem_bw
            mem_rate = rates.get("mem_bytes", 0.0)
            if _exceeds(mem_rate, core_bw, tol):
                self._report(
                    "CK006",
                    f"{proc.name}: memory traffic {mem_rate!r} B/s exceeds "
                    f"the single-core limit {core_bw!r} B/s",
                )

    # -- flow-solver hooks ---------------------------------------------------

    def on_flow_split(
        self,
        flows: "list[FlowRequest]",
        per_flow_subflows: "list[list[_SubFlow]]",
    ) -> None:
        """CK007: the adaptive split conserves each flow's demand."""
        self._count("flow_split")
        for flow, subs in zip(flows, per_flow_subflows):
            total = sum(sub.demand for sub in subs)
            if abs(total - flow.demand) > self.tolerance * max(1.0, flow.demand):
                self._report(
                    "CK007",
                    f"flow {flow.key} ({flow.src}->{flow.dst}): sub-flow "
                    f"demands sum to {total!r}, demand is {flow.demand!r}",
                )

    def on_flow_solve(
        self,
        solver: "FlowSolver",
        flows: "list[FlowRequest]",
        result: "FlowResult",
    ) -> None:
        """CK008 + CK009: link capacities and per-flow grant bounds."""
        self._count("flow_solve")
        tol = self.tolerance
        for edge, load in result.edge_load.items():
            capacity = solver.topology.capacity(*edge)
            if _exceeds(load, capacity, tol):
                self._report(
                    "CK008",
                    f"link {edge[0]}--{edge[1]}: granted load {load!r} B/s "
                    f"exceeds capacity {capacity!r} B/s",
                )
        for flow in flows:
            grant = result.grants.get(flow.key)
            if grant is None:
                self._report(
                    "CK009", f"flow {flow.key}: no grant in the solve result"
                )
                continue
            if grant < -tol or _exceeds(grant, flow.demand, tol):
                self._report(
                    "CK009",
                    f"flow {flow.key} ({flow.src}->{flow.dst}): grant "
                    f"{grant!r} outside [0, demand={flow.demand!r}]",
                )

    # -- storage hook ---------------------------------------------------------

    def on_fs_solve(
        self,
        fs: "SharedFilesystem",
        demands: "list[tuple[int, str, IODemand]]",
        grants: "dict[int, IOGrant]",
    ) -> None:
        """CK010: grant ratios in [0, 1] and pool totals under capacity."""
        self._count("fs_solve")
        tol = self.tolerance
        total_data = 0.0
        total_meta = 0.0
        for pid, grant in grants.items():
            if grant.ratio < -tol or _exceeds(grant.ratio, 1.0, tol):
                self._report(
                    "CK010",
                    f"{fs.name}: pid {pid} grant ratio {grant.ratio!r} "
                    f"outside [0, 1]",
                )
            total_data += grant.write_bw + grant.read_bw
            total_meta += grant.meta_ops
        if _exceeds(total_data, fs.effective_disk_bw, tol):
            self._report(
                "CK010",
                f"{fs.name}: granted data traffic {total_data!r} B/s exceeds "
                f"effective disk bandwidth {fs.effective_disk_bw!r} B/s",
            )
        if _exceeds(total_meta, fs.effective_meta_capacity, tol):
            self._report(
                "CK010",
                f"{fs.name}: granted metadata rate {total_meta!r} op/s "
                f"exceeds effective capacity {fs.effective_meta_capacity!r}",
            )

    # -- share-function wrapper -----------------------------------------------

    def _on_share(self, capacity, demands, grants, share_fn) -> None:
        """CK011: the sharing discipline honours its contract."""
        self._count("share")
        tol = self.tolerance
        try:
            if share_fn is max_min_fair_share:
                assert_max_min(capacity, demands, grants, tol)
            else:
                # Generic disciplines still promise grant <= demand and
                # aggregate conservation.
                for i, (demand, grant) in enumerate(zip(demands, grants)):
                    if grant < -tol or _exceeds(grant, demand, tol):
                        raise CheckError(
                            f"share: grant[{i}]={grant!r} outside "
                            f"[0, demand={demand!r}]"
                        )
                total = float(sum(grants))
                if _exceeds(total, capacity, tol):
                    raise CheckError(
                        f"share: grants sum to {total!r} over capacity "
                        f"{capacity!r}"
                    )
        except CheckError as err:
            if self.mode == "raise":
                raise
            self._report("CK011", str(err))
