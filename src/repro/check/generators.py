"""Seeded property-fuzz generators for simulator scenarios.

No new dependencies: all randomness flows through
:func:`repro.sim.rng.spawn_rng`, so the case derived from ``(seed, id)``
is the same on every machine and every run.  A :class:`CaseSpec` is a
frozen, picklable value object — the fuzz harness ships specs to worker
processes, writes them to the pinned corpus as JSON, and shrinks them by
halving fields — and every node reference is an *index* (taken modulo the
case's node count), so shrinking the cluster never invalidates a spec.

Cases are deliberately tiny (2-4 nodes, 3-6 iterations, 1-2 ranks per
node): the harness runs each case several times through paired code
paths, and small cases shrink to readable counterexamples.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Iterator

from repro.apps.base import AppJob
from repro.apps.registry import get_app
from repro.cluster.cluster import Cluster
from repro.core.anomaly import make_anomaly
from repro.errors import CheckError
from repro.faults.injector import FaultInjector
from repro.sim.rng import spawn_rng
from repro.units import MB

#: machine flavours a case may target; I/O anomalies need the NFS
#: appliance, so they are only generated on chameleon.
MACHINES = ("voltrino", "chameleon")

#: proxy apps drawn for job mixes (a spread of compute/memory/network
#: intensity; iterations are overridden per case so any choice is cheap)
APP_POOL = ("miniMD", "CoMD", "miniGhost", "milc")

#: anomalies available on every machine
ANOMALY_POOL = ("cpuoccupy", "cachecopy", "membw", "memeater", "netoccupy")

#: anomalies that additionally need a shared filesystem
IO_ANOMALY_POOL = ("iobandwidth", "iometadata")

#: non-lethal fault kinds (crashes would make the checkpoint and
#: incremental oracles trivially diverge on job-kill ordering; lethal
#: faults get their own dedicated tests)
FAULT_POOL = ("slowdown", "link_down")


@dataclass(frozen=True)
class AppCase:
    """One application job in a case's mix."""

    app: str
    first_node: int  # index into the case's nodes, modulo n_nodes
    n_nodes: int  # nodes the job spans
    ranks_per_node: int
    iterations: int
    start: float


@dataclass(frozen=True)
class AnomalyCase:
    """One anomaly injection."""

    name: str
    node: int  # index modulo the case's n_nodes
    core: int
    start: float
    duration: float
    knobs: tuple[tuple[str, float], ...] = ()
    peer: int | None = None  # netoccupy destination, index modulo n_nodes


@dataclass(frozen=True)
class FaultCase:
    """One fault window."""

    kind: str
    node: int  # index modulo the case's n_nodes
    start: float
    duration: float
    factor: float = 0.5


@dataclass(frozen=True)
class CaseSpec:
    """A complete, self-contained fuzz scenario."""

    case_id: int
    seed: int
    machine: str
    n_nodes: int
    k_paths: int
    apps: tuple[AppCase, ...]
    anomalies: tuple[AnomalyCase, ...]
    faults: tuple[FaultCase, ...]
    horizon: float

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"case {self.case_id} (seed={self.seed}): {self.machine} "
            f"x{self.n_nodes} k={self.k_paths} apps="
            f"[{', '.join(f'{a.app}/{a.iterations}it' for a in self.apps)}] "
            f"anomalies=[{', '.join(a.name for a in self.anomalies)}] "
            f"faults=[{', '.join(f.kind for f in self.faults)}]"
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CaseSpec":
        try:
            return cls(
                case_id=int(data["case_id"]),
                seed=int(data["seed"]),
                machine=str(data["machine"]),
                n_nodes=int(data["n_nodes"]),
                k_paths=int(data["k_paths"]),
                apps=tuple(AppCase(**a) for a in data["apps"]),
                anomalies=tuple(
                    AnomalyCase(
                        **{
                            **a,
                            "knobs": tuple(
                                (str(k), float(v)) for k, v in a.get("knobs", ())
                            ),
                        }
                    )
                    for a in data["anomalies"]
                ),
                faults=tuple(FaultCase(**f) for f in data["faults"]),
                horizon=float(data["horizon"]),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise CheckError(f"malformed case spec: {err}") from None

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CaseSpec":
        return cls.from_dict(json.loads(text))


# -- generation ---------------------------------------------------------------


def _round(value: float, digits: int = 3) -> float:
    """Keep generated floats short so specs stay readable and JSON-stable."""
    return round(float(value), digits)


def generate_case(seed: int, case_id: int) -> CaseSpec:
    """Derive one deterministic case from ``(seed, case_id)``."""
    rng = spawn_rng(seed, f"check:case{case_id}")
    machine = MACHINES[int(rng.integers(0, len(MACHINES)))]
    n_nodes = int(rng.integers(2, 5))
    k_paths = int(rng.integers(1, 4)) if machine == "voltrino" else 1

    apps = []
    for i in range(int(rng.integers(1, 3))):
        apps.append(
            AppCase(
                app=APP_POOL[int(rng.integers(0, len(APP_POOL)))],
                first_node=int(rng.integers(0, n_nodes)),
                n_nodes=int(rng.integers(1, n_nodes + 1)),
                ranks_per_node=int(rng.integers(1, 3)),
                iterations=int(rng.integers(3, 7)),
                start=_round(rng.uniform(0.0, 2.0)),
            )
        )

    pool = ANOMALY_POOL + (IO_ANOMALY_POOL if machine == "chameleon" else ())
    anomalies = []
    for i in range(int(rng.integers(0, 3))):
        name = pool[int(rng.integers(0, len(pool)))]
        node = int(rng.integers(0, n_nodes))
        knobs: tuple[tuple[str, float], ...] = ()
        peer = None
        if name == "cpuoccupy":
            knobs = (("utilization", _round(rng.uniform(40.0, 100.0))),)
        elif name == "cachecopy":
            knobs = (("multiplier", _round(rng.uniform(0.5, 2.0))),)
        elif name == "membw":
            knobs = (("rate", _round(rng.uniform(0.5, 1.0))),)
        elif name == "memeater":
            knobs = (
                ("buffer_size", float(8 * MB)),
                ("total_size", _round(rng.uniform(64.0, 256.0)) * MB),
            )
        elif name == "netoccupy":
            knobs = (("rate", _round(rng.uniform(0.5, 1.0))),)
            peer = (node + 1 + int(rng.integers(0, max(1, n_nodes - 1)))) % n_nodes
        elif name == "iobandwidth":
            knobs = (("demand_bw", _round(rng.uniform(10.0, 50.0)) * MB),)
        elif name == "iometadata":
            knobs = (("rate", _round(rng.uniform(50.0, 200.0))),)
        anomalies.append(
            AnomalyCase(
                name=name,
                node=node,
                core=int(rng.integers(0, 2)),
                start=_round(rng.uniform(0.5, 5.0)),
                duration=_round(rng.uniform(5.0, 25.0)),
                knobs=knobs,
                peer=peer,
            )
        )

    faults = []
    for i in range(int(rng.integers(0, 3))):
        kind = FAULT_POOL[int(rng.integers(0, len(FAULT_POOL)))]
        faults.append(
            FaultCase(
                kind=kind,
                node=int(rng.integers(0, n_nodes)),
                start=_round(rng.uniform(1.0, 10.0)),
                duration=_round(rng.uniform(2.0, 10.0)),
                factor=_round(rng.uniform(0.3, 0.8)) if kind == "slowdown" else 0.0,
            )
        )

    return CaseSpec(
        case_id=case_id,
        seed=seed,
        machine=machine,
        n_nodes=n_nodes,
        k_paths=k_paths,
        apps=tuple(apps),
        anomalies=tuple(anomalies),
        faults=tuple(faults),
        horizon=300.0,
    )


def generate_cases(n: int, seed: int) -> list[CaseSpec]:
    """The first ``n`` cases of the stream derived from ``seed``."""
    if n < 0:
        raise CheckError("case count must be >= 0")
    return [generate_case(seed, i) for i in range(n)]


# -- materialisation ----------------------------------------------------------


def build_cluster(spec: CaseSpec, backend: str | None = None) -> Cluster:
    """A fresh cluster matching the spec's machine flavour.

    ``backend`` pins the simulation core (object/array); ``None`` keeps
    the ambient default so ``REPRO_BACKEND=array`` runs the whole fuzz
    harness on the array path.
    """
    if spec.machine == "voltrino":
        return Cluster.voltrino(
            num_nodes=spec.n_nodes, k_paths=spec.k_paths, backend=backend
        )
    if spec.machine == "chameleon":
        return Cluster.chameleon(
            num_nodes=spec.n_nodes, k_paths=spec.k_paths, backend=backend
        )
    raise CheckError(f"unknown machine flavour {spec.machine!r}")


def deploy_case(spec: CaseSpec, cluster: Cluster) -> list[AppJob]:
    """Spawn the spec's jobs, anomalies, and faults onto ``cluster``."""
    jobs = []
    for i, app_case in enumerate(spec.apps):
        app = get_app(app_case.app).scaled(iterations=app_case.iterations)
        span = min(app_case.n_nodes, spec.n_nodes)
        nodes = [
            (app_case.first_node + j) % spec.n_nodes for j in range(span)
        ]
        jobs.append(
            AppJob(
                app,
                cluster,
                nodes=nodes,
                ranks_per_node=app_case.ranks_per_node,
                start=app_case.start,
                seed=spec.seed + i,
            )
        )
        jobs[-1].launch()
    for anomaly_case in spec.anomalies:
        knobs = dict(anomaly_case.knobs)
        if anomaly_case.peer is not None:
            node_idx = anomaly_case.node % spec.n_nodes
            peer_idx = anomaly_case.peer % spec.n_nodes
            if peer_idx == node_idx:
                # Shrinking the node count can fold peer onto source;
                # a self-flow is meaningless, so step to the neighbour.
                peer_idx = (peer_idx + 1) % spec.n_nodes
            knobs["peer"] = f"node{peer_idx}"
        anomaly = make_anomaly(
            anomaly_case.name, duration=anomaly_case.duration, **knobs
        )
        anomaly.launch(
            cluster,
            node=anomaly_case.node % spec.n_nodes,
            core=anomaly_case.core,
            start=anomaly_case.start,
        )
    if spec.faults:
        injector = FaultInjector(cluster)
        for fault_case in spec.faults:
            knobs = {}
            if fault_case.kind == "slowdown":
                knobs["factor"] = fault_case.factor
            injector.add(
                fault_case.start,
                f"node{fault_case.node % spec.n_nodes}",
                fault_case.kind,
                duration=fault_case.duration,
                **knobs,
            )
        injector.deploy()
    return jobs


# -- shrinking ----------------------------------------------------------------


def shrink_candidates(spec: CaseSpec) -> Iterator[CaseSpec]:
    """Strictly-smaller variants of ``spec``, most aggressive first.

    Each candidate halves one axis: drop half the anomalies, faults, or
    apps; halve iterations and ranks; halve the node count.  Node indices
    are stored modulo ``n_nodes``, so every candidate is well-formed.
    """
    if len(spec.anomalies) > 0:
        yield replace(spec, anomalies=spec.anomalies[: len(spec.anomalies) // 2])
    if len(spec.faults) > 0:
        yield replace(spec, faults=spec.faults[: len(spec.faults) // 2])
    if len(spec.apps) > 1:
        yield replace(spec, apps=spec.apps[: len(spec.apps) // 2])
    if any(a.iterations > 1 for a in spec.apps):
        yield replace(
            spec,
            apps=tuple(
                replace(a, iterations=max(1, a.iterations // 2)) for a in spec.apps
            ),
        )
    if any(a.ranks_per_node > 1 for a in spec.apps):
        yield replace(
            spec,
            apps=tuple(
                replace(a, ranks_per_node=max(1, a.ranks_per_node // 2))
                for a in spec.apps
            ),
        )
    if spec.n_nodes > 2:
        # Never below 2 nodes: single-node topologies have no network
        # stage, and netoccupy peers must differ from their source.
        yield replace(spec, n_nodes=max(2, spec.n_nodes // 2))
