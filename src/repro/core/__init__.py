"""HPAS: the HPC Performance Anomaly Suite (the paper's contribution).

Eight anomaly generators, one per row of the paper's Table 1:

=============================  ==============  =====================================
Anomaly type                   Name            Runtime configuration options
=============================  ==============  =====================================
CPU intensive process          ``cpuoccupy``   utilization%
Cache contention               ``cachecopy``   cache (L1/L2/L3), multiplier, rate
Memory bandwidth contention    ``membw``       buffer size, rate
Memory intensive process       ``memeater``    buffer size, rate
Memory leak                    ``memleak``     buffer size, rate
Network contention             ``netoccupy``   message size, rate, ntasks
I/O metadata server contention ``iometadata``  rate, ntasks
I/O bandwidth contention       ``iobandwidth`` file size, ntasks
=============================  ==============  =====================================

Every anomaly has configurable start/end times (through
:meth:`Anomaly.launch` and the :class:`~repro.core.injector.AnomalyInjector`).
"""

from repro.core.anomaly import ANOMALY_REGISTRY, Anomaly, make_anomaly, parse_cli
from repro.core.cpuoccupy import CpuOccupy
from repro.core.cachecopy import CacheCopy
from repro.core.membw import MemBw
from repro.core.memeater import MemEater
from repro.core.memleak import MemLeak
from repro.core.netoccupy import NetOccupy
from repro.core.iometadata import IOMetadata
from repro.core.iobandwidth import IOBandwidth
from repro.core.injector import AnomalyInjector, Injection

__all__ = [
    "ANOMALY_REGISTRY",
    "Anomaly",
    "AnomalyInjector",
    "CacheCopy",
    "CpuOccupy",
    "IOBandwidth",
    "IOMetadata",
    "Injection",
    "MemBw",
    "MemEater",
    "MemLeak",
    "NetOccupy",
    "make_anomaly",
    "parse_cli",
]
