"""Memory leak anomaly (``memleak``).

Each iteration allocates an array of characters (20 MB by default), fills
it with random characters, and *drops the pointer* — the memory is never
freed, so the process footprint grows monotonically (the pathological
staircase of Fig. 5) until the duration elapses, a configured limit is
reached, or the node runs out of memory.
"""

from __future__ import annotations

import math

from repro.core.anomaly import Anomaly, cluster_of, register
from repro.errors import AnomalyError
from repro.sim.process import Body, Segment, Sleep, SimProcess
from repro.units import GB10, MB


@register
class MemLeak(Anomaly):
    """Leak memory at a configurable rate.

    Parameters
    ----------
    buffer_size:
        Bytes leaked per iteration.
    rate:
        Iterations per second (default tuned to Fig. 5's ~7 MB/s ramp).
    limit:
        Stop allocating once this many bytes are held (the process keeps
        running so the memory stays dead until the duration ends).
    """

    name = "memleak"

    FILL_BW = 2 * GB10

    def __init__(
        self,
        buffer_size: float = 20 * MB,
        rate: float = 0.35,
        limit: float = math.inf,
        duration: float = math.inf,
    ) -> None:
        super().__init__(duration=duration)
        if buffer_size <= 0 or rate <= 0 or limit <= 0:
            raise AnomalyError("buffer_size, rate and limit must be positive")
        self.buffer_size = buffer_size
        self.rate = rate
        self.limit = limit

    def body(self, proc: SimProcess) -> Body:
        ledger = cluster_of(proc).node(proc.node).memory
        held = 0.0
        while held < self.limit:
            step = min(self.buffer_size, self.limit - held)
            ledger.alloc(proc.pid, step)
            held += step
            yield Segment(
                work=step / self.FILL_BW,
                cpu=1.0,
                ips=0.9e9,
                cache_intensity=0.3,
                mpki_base=12.0,
                mem_bw=self.FILL_BW,
                label="memleak fill",
            )
            pause = 1.0 / self.rate - step / self.FILL_BW
            if pause > 0:
                yield Sleep(pause)
        # Limit reached: hold the dead memory without further activity.
        yield Segment(work=math.inf, cpu=0.01, ips=1e7, label="memleak hold")
