"""FINJ-style anomaly injection campaigns.

The :class:`AnomalyInjector` schedules a list of :class:`Injection`
records — anomaly, placement, start time, duration — onto a cluster, which
is how the paper composes "more complicated variability patterns" from
multiple anomaly instances (Sec. 3) and how the diagnosis experiments
label their runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.anomaly import Anomaly
from repro.cluster.cluster import Cluster
from repro.errors import AnomalyError
from repro.sim.process import SimProcess


@dataclass
class Injection:
    """One scheduled anomaly instance.

    Attributes
    ----------
    anomaly:
        The configured anomaly object.  Its own ``duration`` is overridden
        by this record's ``duration`` when the latter is finite.
    node / core:
        Placement.
    start / duration:
        Window during which the anomaly runs.
    """

    anomaly: Anomaly
    node: str | int
    core: int = 0
    start: float = 0.0
    duration: float = math.inf
    process: SimProcess | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.start < 0:
            raise AnomalyError("injection start must be >= 0")
        if self.duration <= 0:
            raise AnomalyError("injection duration must be positive")


class AnomalyInjector:
    """Schedules injection campaigns onto a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.injections: list[Injection] = []

    def add(self, injection: Injection) -> Injection:
        """Queue an injection (call :meth:`deploy` to schedule them all)."""
        self.injections.append(injection)
        return injection

    def inject(
        self,
        anomaly: Anomaly,
        node: str | int,
        core: int = 0,
        start: float = 0.0,
        duration: float = math.inf,
    ) -> Injection:
        """Convenience: build, queue, and immediately deploy one injection."""
        injection = Injection(
            anomaly=anomaly, node=node, core=core, start=start, duration=duration
        )
        self.add(injection)
        self._deploy_one(injection)
        return injection

    def deploy(self) -> list[SimProcess]:
        """Schedule every queued injection that is not yet deployed."""
        procs = []
        for injection in self.injections:
            if injection.process is None:
                procs.append(self._deploy_one(injection))
        return procs

    def _deploy_one(self, injection: Injection) -> SimProcess:
        if math.isfinite(injection.duration):
            injection.anomaly.duration = injection.duration
        proc = injection.anomaly.launch(
            self.cluster,
            node=injection.node,
            core=injection.core,
            start=injection.start,
        )
        injection.process = proc
        obs = self.cluster.sim.obs
        if obs is not None:
            node = self.cluster.node(injection.node).name
            span = obs.begin(
                "injector",
                injection.anomaly.name,
                ("cluster", "injector"),
                start=injection.start,
                args={
                    "node": node,
                    "core": injection.core,
                    "duration": injection.duration,
                    **injection.anomaly.describe(),
                },
            )
            obs.watch(span, [proc.pid])
        return proc

    def active_labels(self, time: float, faults=None) -> list[str]:
        """Names of anomalies whose window covers ``time`` (ground truth).

        When a :class:`~repro.faults.FaultInjector` (or anything exposing
        ``crashed_between``) is passed, anomalies whose node is crashed at
        ``time`` are excluded — a dead node's anomaly process died with it,
        so it must not appear in the ground-truth label either.
        """
        labels = []
        for injection in self.injections:
            if injection.start <= time < injection.start + injection.duration:
                if faults is not None:
                    node = self.cluster.node(injection.node).name
                    if faults.crashed_between(node, injection.start, time + 1e-9):
                        continue
                labels.append(injection.anomaly.name)
        return labels
