"""Predefined injection campaigns.

The paper argues standardized scenarios make research comparable.  This
module provides named, parameterised campaigns built on the injector:

``paper_fig8``
    The exact placements used by the Fig. 8 runtime matrix.
``random_campaign``
    A seeded random schedule of anomalies across a cluster — the kind of
    labelled chaos used to train/evaluate diagnosis pipelines at scale.
``periodic``
    One anomaly pulsing on/off, the on/off interference pattern of
    Kuo et al. that the paper cites as composable with HPAS knobs.
"""

from __future__ import annotations

import math

from repro.cluster.cluster import Cluster
from repro.core.anomaly import ANOMALY_REGISTRY, make_anomaly
from repro.core.injector import AnomalyInjector, Injection
from repro.errors import AnomalyError
from repro.sim.rng import spawn_rng

#: anomalies eligible for random campaigns (single-node, self-contained)
CAMPAIGN_ANOMALIES = (
    "cpuoccupy",
    "cachecopy",
    "membw",
    "memeater",
    "memleak",
)


def paper_fig8(cluster: Cluster, anomaly: str) -> AnomalyInjector:
    """The Fig. 8 placement for one anomaly type on node0."""
    injector = AnomalyInjector(cluster)
    spec = cluster.spec
    if anomaly == "cachecopy":
        sibling = spec.sibling_of(0)
        assert sibling is not None
        injector.add(Injection(make_anomaly("cachecopy", cache="L3"), node=0, core=sibling))
    elif anomaly == "cpuoccupy":
        injector.add(Injection(make_anomaly("cpuoccupy"), node=0, core=0))
    elif anomaly == "membw":
        for core in (4, 5, 6):
            injector.add(Injection(make_anomaly("membw"), node=0, core=core))
    elif anomaly in ("memeater", "memleak"):
        injector.add(Injection(make_anomaly(anomaly), node=0, core=8))
    elif anomaly != "none":
        raise AnomalyError(f"no fig8 placement for {anomaly!r}")
    injector.deploy()
    return injector


def random_campaign(
    cluster: Cluster,
    duration: float,
    events: int = 10,
    seed: int | None = None,
    anomalies: tuple[str, ...] = CAMPAIGN_ANOMALIES,
) -> AnomalyInjector:
    """Schedule ``events`` random anomaly windows over ``duration``.

    Every event picks an anomaly type, node, core, start, and window
    length from a seeded stream, giving reproducible labelled chaos.
    """
    if duration <= 0 or events < 1:
        raise AnomalyError("duration > 0 and events >= 1 required")
    unknown = set(anomalies) - set(ANOMALY_REGISTRY)
    if unknown:
        raise AnomalyError(f"unknown anomalies: {sorted(unknown)}")
    rng = spawn_rng(seed, "random-campaign")
    injector = AnomalyInjector(cluster)
    node_names = cluster.node_names
    for _ in range(events):
        name = anomalies[int(rng.integers(0, len(anomalies)))]
        node = node_names[int(rng.integers(0, len(node_names)))]
        core = int(rng.integers(0, cluster.spec.logical_cores))
        start = float(rng.uniform(0.0, duration * 0.8))
        window = float(rng.uniform(duration * 0.1, duration * 0.4))
        injector.add(
            Injection(
                make_anomaly(name), node=node, core=core, start=start, duration=window
            )
        )
    injector.deploy()
    return injector


def periodic(
    cluster: Cluster,
    anomaly: str,
    node: str | int,
    core: int,
    period: float,
    duty: float = 0.5,
    cycles: int = 10,
    start: float = 0.0,
    **knobs,
) -> AnomalyInjector:
    """Pulse one anomaly on/off: ``duty`` of each ``period`` is active."""
    if period <= 0 or not 0.0 < duty < 1.0 or cycles < 1:
        raise AnomalyError("need period > 0, duty in (0,1), cycles >= 1")
    injector = AnomalyInjector(cluster)
    for cycle in range(cycles):
        injector.add(
            Injection(
                make_anomaly(anomaly, **knobs),
                node=node,
                core=core,
                start=start + cycle * period,
                duration=period * duty,
            )
        )
    injector.deploy()
    return injector


def total_injected_time(injector: AnomalyInjector, horizon: float = math.inf) -> float:
    """Sum of anomaly-active seconds across a campaign (for reporting)."""
    total = 0.0
    for injection in injector.injections:
        end = min(injection.start + injection.duration, horizon)
        total += max(0.0, end - injection.start)
    return total
