"""Anomaly base class, registry, and HPAS-style CLI parsing.

The original HPAS ships userspace executables configured by command-line
options (``hpas cpuoccupy -u 80 ...``).  The reproduction mirrors that
surface: every anomaly is a class whose constructor exposes the Table 1
knobs, registered under its paper name, and :func:`parse_cli` accepts the
same option style so scripted injection campaigns read like HPAS invocations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Type

from repro.errors import AnomalyError
from repro.sim.process import Body, SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster


class Anomaly(ABC):
    """Base class for HPAS anomaly generators.

    Subclasses implement :meth:`body` — a simulated-process generator that
    runs until externally stopped.  ``launch`` handles the suite-wide
    start/end-time knobs: the anomaly process is spawned at ``start`` and,
    if ``duration`` is finite, killed at ``start + duration`` (releasing
    whatever memory it holds, as the real generators do on exit).
    """

    #: registry name (the paper's anomaly name)
    name: str = "anomaly"

    def __init__(self, duration: float = math.inf) -> None:
        if duration <= 0:
            raise AnomalyError("anomaly duration must be positive")
        self.duration = duration

    @abstractmethod
    def body(self, proc: SimProcess) -> Body:
        """The anomaly's process body."""

    def launch(
        self,
        cluster: "Cluster",
        node: str | int,
        core: int = 0,
        start: float = 0.0,
    ) -> SimProcess:
        """Start one instance on ``(node, core)`` at time ``start``."""
        node_name = cluster.node(node).name
        proc = cluster.spawn(
            name=f"{self.name}@{node_name}:c{core}",
            body=self.body,
            node=node_name,
            core=core,
            at=start,
        )
        if math.isfinite(self.duration):
            cluster.sim.schedule(
                start + self.duration,
                lambda: cluster.sim.kill(proc, reason="anomaly duration elapsed"),
            )
        return proc

    def describe(self) -> dict[str, object]:
        """The anomaly's knob settings (for logging/provenance)."""
        public = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        public["name"] = self.name
        return public


def cluster_of(proc: SimProcess) -> "Cluster":
    """The cluster behind a process's simulator (anomalies need one)."""
    assert proc.sim is not None
    cluster = getattr(proc.sim.model, "cluster", None)
    if cluster is None:
        raise AnomalyError(
            "anomaly processes must run on a cluster-backed simulator"
        )
    return cluster


ANOMALY_REGISTRY: dict[str, Type[Anomaly]] = {}


def register(cls: Type[Anomaly]) -> Type[Anomaly]:
    """Class decorator adding an anomaly to the suite registry."""
    if not cls.name or cls.name == "anomaly":
        raise AnomalyError(f"{cls.__name__} must define a unique name")
    if cls.name in ANOMALY_REGISTRY:
        raise AnomalyError(f"duplicate anomaly name {cls.name!r}")
    ANOMALY_REGISTRY[cls.name] = cls
    return cls


def make_anomaly(name: str, **knobs) -> Anomaly:
    """Instantiate a registered anomaly by its paper name."""
    try:
        cls = ANOMALY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(ANOMALY_REGISTRY))
        raise AnomalyError(f"unknown anomaly {name!r} (known: {known})") from None
    return cls(**knobs)


#: CLI option spellings per anomaly, mirroring the HPAS executables.
_CLI_OPTIONS: dict[str, dict[str, tuple[str, type]]] = {
    "cpuoccupy": {"-u": ("utilization", float), "--utilization": ("utilization", float)},
    "cachecopy": {
        "-c": ("cache", str),
        "--cache": ("cache", str),
        "-m": ("multiplier", float),
        "--multiplier": ("multiplier", float),
        "-r": ("rate", float),
        "--rate": ("rate", float),
    },
    "membw": {
        "-s": ("buffer_size", float),
        "--size": ("buffer_size", float),
        "-r": ("rate", float),
        "--rate": ("rate", float),
    },
    "memeater": {
        "-s": ("buffer_size", float),
        "--size": ("buffer_size", float),
        "-r": ("rate", float),
        "--rate": ("rate", float),
        "-t": ("total_size", float),
        "--total": ("total_size", float),
    },
    "memleak": {
        "-s": ("buffer_size", float),
        "--size": ("buffer_size", float),
        "-r": ("rate", float),
        "--rate": ("rate", float),
        "-l": ("limit", float),
        "--limit": ("limit", float),
    },
    "netoccupy": {
        "-m": ("message_size", float),
        "--message-size": ("message_size", float),
        "-r": ("rate", float),
        "--rate": ("rate", float),
    },
    "iometadata": {"-r": ("rate", float), "--rate": ("rate", float)},
    "iobandwidth": {
        "-s": ("file_size", float),
        "--file-size": ("file_size", float),
    },
}

_COMMON_OPTIONS: dict[str, tuple[str, type]] = {
    "-d": ("duration", float),
    "--duration": ("duration", float),
}


def parse_cli(argv: list[str]) -> Anomaly:
    """Parse an HPAS-style command line into an anomaly instance.

    Example::

        parse_cli(["cpuoccupy", "-u", "80", "-d", "300"])
    """
    if not argv:
        raise AnomalyError("empty anomaly command line")
    name, *rest = argv
    if name not in ANOMALY_REGISTRY:
        known = ", ".join(sorted(ANOMALY_REGISTRY))
        raise AnomalyError(f"unknown anomaly {name!r} (known: {known})")
    options = {**_COMMON_OPTIONS, **_CLI_OPTIONS.get(name, {})}
    knobs: dict[str, object] = {}
    i = 0
    while i < len(rest):
        flag = rest[i]
        if flag not in options:
            raise AnomalyError(f"unknown option {flag!r} for {name}")
        if i + 1 >= len(rest):
            raise AnomalyError(f"option {flag!r} needs a value")
        dest, caster = options[flag]
        try:
            knobs[dest] = caster(rest[i + 1])
        except ValueError as exc:
            raise AnomalyError(f"bad value for {flag!r}: {rest[i + 1]!r}") from exc
        i += 2
    return make_anomaly(name, **knobs)
