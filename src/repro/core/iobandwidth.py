"""I/O bandwidth contention anomaly (``iobandwidth``).

Uses ``dd`` to copy random data into a file, then copies that file to
another file, and so on — saturating the storage servers' disks and the
interconnect between the filesystem and the compute nodes.  Each copy
round reads the previous file and writes the next one.
"""

from __future__ import annotations

import math

from repro.core.anomaly import Anomaly, register
from repro.errors import AnomalyError
from repro.sim.process import Body, IODemand, Segment, SimProcess
from repro.units import GB, MB10


@register
class IOBandwidth(Anomaly):
    """dd-style file copy chains against the shared filesystem.

    Parameters
    ----------
    file_size:
        Bytes per file (sets the copy-round granularity; the fluid model
        folds rounds into a sustained read+write stream).
    demand_bw:
        Disk bandwidth one instance tries to extract, each direction.
    fs:
        Target shared filesystem name.
    """

    name = "iobandwidth"

    def __init__(
        self,
        file_size: float = 1 * GB,
        demand_bw: float = 25 * MB10,
        fs: str = "nfs",
        duration: float = math.inf,
    ) -> None:
        super().__init__(duration=duration)
        if file_size <= 0 or demand_bw <= 0:
            raise AnomalyError("file_size and demand_bw must be positive")
        self.file_size = file_size
        self.demand_bw = demand_bw
        self.fs = fs

    def body(self, proc: SimProcess) -> Body:
        # dd writes /dev/urandom data into the first file, then each round
        # reads the previous file while writing the next.  The first
        # (write-only) round is negligible relative to the chain — and
        # under contention it would stretch indefinitely — so the model is
        # the steady-state read+write stream plus the create/unlink
        # metadata chatter of rotating files.
        meta_rate = max(1.0, self.demand_bw / self.file_size * 4.0)
        yield Segment(
            work=math.inf,
            cpu=0.2,
            ips=0.2e9,
            io=IODemand(
                fs=self.fs,
                write_bw=self.demand_bw,
                read_bw=self.demand_bw,
                meta_ops=meta_rate,
            ),
            label="iobandwidth copy chain",
        )
