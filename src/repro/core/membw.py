"""Memory bandwidth contention anomaly (``membw``).

Writes the transpose of one stack-allocated matrix into another using x86
SSE *non-temporal* stores (``MOVNT*``): the data bypasses the cache
entirely, so the anomaly consumes memory bandwidth without polluting any
cache level — the property that distinguishes it from ``memeater`` and
lets Fig. 4 separate bandwidth contention from cache contention.
"""

from __future__ import annotations

import math

from repro.core.anomaly import Anomaly, cluster_of, register
from repro.errors import AnomalyError
from repro.sim.process import Body, Segment, SimProcess
from repro.units import GB10, KB, MB


@register
class MemBw(Anomaly):
    """Saturate memory bandwidth with non-temporal transpose streams.

    Parameters
    ----------
    buffer_size:
        Combined size of the two matrices (bytes).  Must exceed the L3 to
        guarantee the stream always reaches memory (default 64 MiB).
    rate:
        Duty cycle in (0, 1]; scales the demanded bandwidth.
    """

    name = "membw"

    #: bandwidth one core's non-temporal store stream can demand
    PEAK_STREAM_BW = 10 * GB10

    def __init__(
        self,
        buffer_size: float = 64 * MB,
        rate: float = 1.0,
        duration: float = math.inf,
    ) -> None:
        super().__init__(duration=duration)
        if buffer_size <= 0:
            raise AnomalyError("buffer size must be positive")
        if not 0.0 < rate <= 1.0:
            raise AnomalyError("rate (duty cycle) must be in (0, 1]")
        self.buffer_size = buffer_size
        self.rate = rate

    def body(self, proc: SimProcess) -> Body:
        ledger = cluster_of(proc).node(proc.node).memory
        ledger.alloc(proc.pid, self.buffer_size)
        try:
            yield Segment(
                work=math.inf,
                cpu=self.rate,
                ips=0.6e9 * self.rate,
                # Non-temporal hint: no cache footprint beyond the store
                # buffers themselves.
                cache_footprint={"L1": 4 * KB},
                cache_intensity=0.1,
                mpki_base=40.0,  # every access misses by construction
                mem_bw=self.PEAK_STREAM_BW * self.rate,
                label=f"membw rate={self.rate:g}",
            )
        finally:
            ledger.free_all(proc.pid)
