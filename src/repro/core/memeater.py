"""Memory-intensive process anomaly (``memeater``).

Allocates an array (35 MB by default), fills it with random values, then
repeatedly ``realloc``-grows it by the same amount and fills the new tail,
until the configured total size is reached.  After the ramp it behaves like
a resident memory-intensive process: a large, *stable* footprint (unlike
``memleak``, whose footprint grows forever).
"""

from __future__ import annotations

import math

from repro.core.anomaly import Anomaly, cluster_of, register
from repro.errors import AnomalyError
from repro.sim.process import Body, Segment, Sleep, SimProcess
from repro.units import GB, GB10, MB


@register
class MemEater(Anomaly):
    """Grow to a fixed footprint, then keep using it.

    Parameters
    ----------
    buffer_size:
        The initial allocation and each ``realloc`` increment (bytes).
    total_size:
        Footprint at which growth stops (bytes).
    rate:
        ``realloc`` steps per second during the ramp.
    """

    name = "memeater"

    #: rate at which the fill loop writes random values
    FILL_BW = 2 * GB10

    def __init__(
        self,
        buffer_size: float = 35 * MB,
        total_size: float = 3.5 * GB,
        rate: float = 50.0,
        duration: float = math.inf,
    ) -> None:
        super().__init__(duration=duration)
        if buffer_size <= 0 or total_size < buffer_size:
            raise AnomalyError("need buffer_size > 0 and total_size >= buffer_size")
        if rate <= 0:
            raise AnomalyError("rate must be positive")
        self.buffer_size = buffer_size
        self.total_size = total_size
        self.rate = rate

    def body(self, proc: SimProcess) -> Body:
        ledger = cluster_of(proc).node(proc.node).memory
        held = 0.0
        while held < self.total_size:
            step = min(self.buffer_size, self.total_size - held)
            ledger.alloc(proc.pid, step)
            held += step
            # realloc extends the array in place (glibc mremap for these
            # sizes), then the new tail is filled with random values.
            yield Segment(
                work=step / self.FILL_BW,
                cpu=1.0,
                ips=1.0e9,
                cache_intensity=0.5,
                cache_footprint={"L3": min(held, 8 * MB)},
                mpki_base=15.0,
                mem_bw=self.FILL_BW,
                label="memeater fill",
            )
            pause = 1.0 / self.rate - (held + step) / self.FILL_BW
            if pause > 0:
                yield Sleep(pause)
        # Steady state: a memory-intensive resident process.
        yield Segment(
            work=math.inf,
            cpu=0.5,
            ips=0.8e9,
            cache_intensity=0.8,
            cache_footprint={"L3": 8 * MB},
            mpki_base=10.0,
            mem_bw=1.0 * GB10,
            label="memeater steady",
        )
