"""Network contention anomaly (``netoccupy``).

Runs on two nodes whose connecting links/routers should be congested: the
ranks on one node continuously ``shmem_putmem`` 100 MB messages to their
corresponding rank on the other node.  The paper found 100 MB to be the
sweet spot — smaller messages create less contention, larger ones add no
bandwidth — which in the fluid model corresponds to the demand saturating
at the NIC's peak for large messages.
"""

from __future__ import annotations

import math

from repro.core.anomaly import Anomaly, cluster_of, register
from repro.errors import AnomalyError
from repro.mpi.comm import sustained_stream
from repro.sim.process import Body, SimProcess
from repro.units import KB, MB

if False:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster


def message_peak_bw(message_size: float, nic_bw: float, half_point: float = 64 * KB) -> float:
    """Achievable put bandwidth for a message size (saturating curve).

    Small messages are latency-dominated; the classic half-bandwidth-point
    model ``bw = peak * M / (M + M_half)`` captures the OSU-style ramp.
    """
    return nic_bw * message_size / (message_size + half_point)


@register
class NetOccupy(Anomaly):
    """Stream large SHMEM puts toward a peer node.

    Parameters
    ----------
    peer:
        Destination node name (set/overridden by :meth:`launch_pair`).
    message_size:
        Bytes per ``shmem_putmem`` (100 MB default, per the paper).
    rate:
        Fraction of the achievable bandwidth to demand, (0, 1].
    """

    name = "netoccupy"

    def __init__(
        self,
        peer: str | None = None,
        message_size: float = 100 * MB,
        rate: float = 1.0,
        duration: float = math.inf,
    ) -> None:
        super().__init__(duration=duration)
        if message_size <= 0:
            raise AnomalyError("message size must be positive")
        if not 0.0 < rate <= 1.0:
            raise AnomalyError("rate must be in (0, 1]")
        self.peer = peer
        self.message_size = message_size
        self.rate = rate

    def body(self, proc: SimProcess) -> Body:
        if self.peer is None:
            raise AnomalyError("netoccupy needs a peer node (use launch_pair)")
        cluster = cluster_of(proc)
        nic_bw = cluster.node(proc.node).spec.nic_bw
        peak = message_peak_bw(self.message_size, nic_bw) * self.rate
        # Back-to-back 100 MB puts form a continuous stream at the
        # achievable rate; modelling them as one sustained flow is exact
        # in the fluid model and costs O(1) events instead of one event
        # per message.
        yield sustained_stream(
            dst=cluster.node(self.peer).name,
            rate=peak,
            label="netoccupy put stream",
        )

    @classmethod
    def launch_pair(
        cls,
        cluster: "Cluster",
        src: str | int,
        dst: str | int,
        ranks: int = 4,
        message_size: float = 100 * MB,
        rate: float = 1.0,
        duration: float = math.inf,
        start: float = 0.0,
    ) -> list[SimProcess]:
        """Start ``ranks`` sender ranks on ``src`` targeting ``dst``.

        Each rank is pinned to its own core, mirroring an MPI/SHMEM job
        with one rank per core on the sending node.
        """
        src_name = cluster.node(src).name
        dst_name = cluster.node(dst).name
        procs = []
        for r in range(ranks):
            anomaly = cls(
                peer=dst_name,
                message_size=message_size,
                rate=rate,
                duration=duration,
            )
            procs.append(anomaly.launch(cluster, src_name, core=r, start=start))
        return procs
