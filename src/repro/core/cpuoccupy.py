"""CPU-intensive process anomaly (``cpuoccupy``).

Performs arithmetic on random values in a loop and sleeps for the rest of
each period (``setitimer`` in the original), so the CPU utilisation it
produces equals the requested percentage while cache and memory impact stay
negligible.  Emulates orphan processes (100%) or OS jitter (low values).
"""

from __future__ import annotations

import math

from repro.core.anomaly import Anomaly, register
from repro.errors import AnomalyError
from repro.sim.process import Body, Segment, SimProcess
from repro.units import KB


@register
class CpuOccupy(Anomaly):
    """Occupy a configurable percentage of one logical CPU.

    Parameters
    ----------
    utilization:
        Target CPU utilisation in percent of one logical core, (0, 100].
    duration:
        Seconds to run (infinite by default; ``launch`` kills on expiry).
    """

    name = "cpuoccupy"

    #: arithmetic loop throughput at 100% duty on the reference core
    FULL_SPEED_IPS = 2.4e9

    def __init__(self, utilization: float = 100.0, duration: float = math.inf) -> None:
        super().__init__(duration=duration)
        if not 0.0 < utilization <= 100.0:
            raise AnomalyError("utilization must be in (0, 100]")
        self.utilization = utilization

    def body(self, proc: SimProcess) -> Body:
        duty = self.utilization / 100.0
        yield Segment(
            work=math.inf,
            cpu=duty,
            ips=self.FULL_SPEED_IPS * duty,
            cache_footprint={"L1": 4 * KB},
            cache_intensity=0.05,
            mpki_base=0.01,
            label=f"cpuoccupy {self.utilization:.0f}%",
        )
