"""Cache contention anomaly (``cachecopy``).

Allocates two contiguous arrays, each half the size of the chosen cache
level (scaled by ``multiplier``), and repeatedly copies one onto the other.
The chosen level is effectively saturated, so co-located applications'
lines are evicted from it — and, with ``multiplier > 1``, the anomaly's own
working set overflows the level and starts producing memory traffic.
"""

from __future__ import annotations

import math

from repro.core.anomaly import Anomaly, cluster_of, register
from repro.errors import AnomalyError
from repro.sim.process import Body, Segment, SimProcess
from repro.units import GB10


@register
class CacheCopy(Anomaly):
    """Evict a chosen cache level by relentless array copying.

    Parameters
    ----------
    cache:
        Target level: "L1", "L2", or "L3".  The two arrays together span
        that level's capacity.
    multiplier:
        Scales the combined working set relative to the level size.
    rate:
        Duty cycle in (0, 1]; sleep is inserted between copy rounds below
        1.0 (the intensity knob of the original generator).
    """

    name = "cachecopy"

    def __init__(
        self,
        cache: str = "L3",
        multiplier: float = 1.0,
        rate: float = 1.0,
        duration: float = math.inf,
    ) -> None:
        super().__init__(duration=duration)
        if cache not in ("L1", "L2", "L3"):
            raise AnomalyError(f"cache must be L1/L2/L3, got {cache!r}")
        if multiplier <= 0:
            raise AnomalyError("multiplier must be > 0")
        if not 0.0 < rate <= 1.0:
            raise AnomalyError("rate (duty cycle) must be in (0, 1]")
        self.cache = cache
        self.multiplier = multiplier
        self.rate = rate

    def body(self, proc: SimProcess) -> Body:
        node = cluster_of(proc).node(proc.node)
        working_set = node.spec.cache.size(self.cache) * self.multiplier
        ledger = node.memory
        ledger.alloc(proc.pid, working_set)  # posix_memalign'd arrays
        try:
            yield Segment(
                work=math.inf,
                cpu=self.rate,
                ips=1.6e9 * self.rate,
                cache_footprint={self.cache: working_set},
                cache_intensity=4.0 * self.rate,
                mpki_base=0.5,
                mpki_extra=30.0,
                miss_cpi_penalty=0.5,
                # The copy loop itself touches memory only when its working
                # set is evicted (self- or cross-eviction): mem_bw_extra
                # prices the refetch traffic.
                mem_bw=0.1 * GB10 * self.rate,
                mem_bw_extra=4.0 * GB10 * self.rate,
                label=f"cachecopy {self.cache} x{self.multiplier:g}",
            )
        finally:
            ledger.free_all(proc.pid)
