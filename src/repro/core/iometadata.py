"""I/O metadata server contention anomaly (``iometadata``).

Creates and opens files, writes one character to each in a loop, closes
all open files, and deletes them after 10 iterations — a pure metadata-op
storm.  On filesystems without a dedicated metadata server (the paper's
Chameleon NFS appliance), the storm also steals server CPU and journal
bandwidth from the data path.
"""

from __future__ import annotations

import math

from repro.core.anomaly import Anomaly, register
from repro.errors import AnomalyError
from repro.sim.process import Body, IODemand, Segment, SimProcess


@register
class IOMetadata(Anomaly):
    """Hammer the metadata server with create/write/close/unlink loops.

    Parameters
    ----------
    rate:
        Metadata operations per second demanded by one instance.
    fs:
        Target shared filesystem name.
    """

    name = "iometadata"

    #: each op writes one character; with create+open+close+unlink per
    #: file the data payload is negligible but non-zero
    BYTES_PER_OP = 64.0

    def __init__(
        self,
        rate: float = 120.0,
        fs: str = "nfs",
        duration: float = math.inf,
    ) -> None:
        super().__init__(duration=duration)
        if rate <= 0:
            raise AnomalyError("rate must be positive")
        self.rate = rate
        self.fs = fs

    def body(self, proc: SimProcess) -> Body:
        yield Segment(
            work=math.inf,
            cpu=0.3,
            ips=0.3e9,
            io=IODemand(
                fs=self.fs,
                meta_ops=self.rate,
                write_bw=self.rate * self.BYTES_PER_OP,
            ),
            label=f"iometadata {self.rate:g} ops/s",
        )
