"""Performance-observability counters for the simulation hot path.

:class:`SimStats` is a passive counter/timer block owned by the
:class:`~repro.sim.engine.Simulator` and shared with its
:class:`~repro.sim.engine.RateModel` (and, through the cluster model, the
:class:`~repro.network.flows.FlowSolver`).  It answers "where did the wall
time go and how much work did the incremental machinery skip" — events
dispatched, resolves, nodes re-solved vs. reused, flow solves vs. memo
hits, and wall-seconds per subsystem.

Wall-clock reads here are deliberate and safe: timings are *observability
output only* and never feed back into simulated state, so determinism is
unaffected (the file is allowlisted for lint rule RL002 via
``wallclock-allowed`` in pyproject.toml).  Counter values, by contrast,
are deterministic and asserted in tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class SimStats:
    """Counters and subsystem wall-time accumulators for one simulation.

    Counters are plain integers keyed by name (``stats.count("resolves")``)
    and deterministic for a given simulation script.  Timings accumulate
    host wall seconds per named subsystem and are *not* deterministic —
    they exist to show where host time goes (``--profile``).
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timings: dict[str, float] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timings[name] = self.timings.get(name, 0.0) + (
                time.perf_counter() - t0
            )

    def reset(self) -> None:
        self.counters.clear()
        self.timings.clear()

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot: counters plus ``t_<name>`` wall seconds."""
        out: dict[str, object] = dict(sorted(self.counters.items()))
        for name in sorted(self.timings):
            out[f"t_{name}"] = self.timings[name]
        return out

    def describe(self) -> list[str]:
        """Human-readable lines for the CLI ``--profile`` report."""
        lines = ["profile:"]
        for name in sorted(self.counters):
            lines.append(f"  {name} = {self.counters[name]}")
        for name in sorted(self.timings):
            lines.append(f"  t_{name} = {self.timings[name]:.4f}s")
        return lines
