"""Execution tracing for simulated processes.

A :class:`Tracer` subscribes to a simulator and records process lifecycle
transitions — spawn, segment starts, speed changes, completion — as
timestamped records.  Useful for debugging contention models ("why did
this rank slow down at t=42?") and for asserting timeline properties in
tests.  Tracing is pull-based and zero-cost when not attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.sim.engine import RateModel, Simulator
from repro.sim.process import SimProcess


@dataclass(frozen=True)
class TraceRecord:
    """One timeline event."""

    time: float
    pid: int
    name: str
    kind: str  # "speed" | "end"
    detail: str
    value: float = 0.0


@dataclass
class Timeline:
    """A process's recorded speed profile."""

    records: list[TraceRecord] = field(default_factory=list)

    def speed_at(self, time: float) -> float:
        """Speed in effect at ``time`` (0.0 before the first record)."""
        current = 0.0
        for rec in self.records:
            if rec.kind != "speed":
                continue
            if rec.time > time:
                break
            current = rec.value
        return current

    def intervals(self) -> list[tuple[float, float, float]]:
        """(start, end, speed) pieces of the speed profile."""
        out = []
        speed_records = [r for r in self.records if r.kind == "speed"]
        end_records = [r for r in self.records if r.kind == "end"]
        for a, b in zip(speed_records, speed_records[1:]):
            out.append((a.time, b.time, a.value))
        if speed_records:
            last = speed_records[-1]
            end = end_records[-1].time if end_records else float("inf")
            out.append((last.time, end, last.value))
        return out


class _TracingModel(RateModel):
    """Wraps a rate model, recording every resolve outcome."""

    def __init__(self, inner: RateModel, tracer: "Tracer") -> None:
        self.inner = inner
        self.tracer = tracer
        # expose the inner model's cluster (anomalies look it up)
        cluster = getattr(inner, "cluster", None)
        if cluster is not None:
            self.cluster = cluster

    def resolve(self, running, now):
        speeds = self.inner.resolve(running, now)
        for proc in running:
            self.tracer._record_speed(now, proc, speeds.get(proc.pid, 0.0))
        return speeds

    def resolve_incremental(self, running, now, dirty=None):
        speeds = self.inner.resolve_incremental(running, now, dirty)
        for proc in running:
            self.tracer._record_speed(now, proc, speeds.get(proc.pid, 0.0))
        return speeds

    def attach_stats(self, stats):
        self.stats = stats
        self.inner.attach_stats(stats)

    def accrue(self, running, t0, t1):
        self.inner.accrue(running, t0, t1)

    def on_process_end(self, proc):
        self.inner.on_process_end(proc)
        self.tracer._record_end(proc)


class Tracer:
    """Records per-process speed timelines from a simulator."""

    def __init__(self) -> None:
        self.timelines: dict[int, Timeline] = {}
        self._names: dict[int, str] = {}
        self._sim: Simulator | None = None

    def attach(self, sim: Simulator) -> None:
        """Wrap the simulator's rate model to observe every resolve."""
        if self._sim is not None:
            raise RuntimeError("tracer already attached")
        self._sim = sim
        sim.model = _TracingModel(sim.model, self)

    def detach(self) -> None:
        """Unwrap the simulator's rate model, restoring the original.

        Recorded timelines are kept; the tracer can be re-attached (to the
        same or another simulator) afterwards.
        """
        if self._sim is None:
            raise RuntimeError("tracer is not attached")
        model = self._sim.model
        if not isinstance(model, _TracingModel) or model.tracer is not self:
            raise RuntimeError(
                "simulator's model is no longer this tracer's wrapper "
                "(was another tracer attached on top?)"
            )
        self._sim.model = model.inner
        self._sim = None

    # -- recording ------------------------------------------------------------

    def _timeline(self, proc: SimProcess) -> Timeline:
        self._names[proc.pid] = proc.name
        return self.timelines.setdefault(proc.pid, Timeline())

    def _record_speed(self, now: float, proc: SimProcess, speed: float) -> None:
        timeline = self._timeline(proc)
        label = proc.current.label if proc.current is not None else ""
        last = next(
            (r for r in reversed(timeline.records) if r.kind == "speed"), None
        )
        if last is not None and last.value == speed and last.detail == label:
            return  # deduplicate no-op resolves
        timeline.records.append(
            TraceRecord(
                time=now,
                pid=proc.pid,
                name=proc.name,
                kind="speed",
                detail=label,
                value=speed,
            )
        )

    def _record_end(self, proc: SimProcess) -> None:
        assert self._sim is not None
        self._timeline(proc).records.append(
            TraceRecord(
                time=self._sim.now,
                pid=proc.pid,
                name=proc.name,
                kind="end",
                detail=proc.exit_reason,
            )
        )

    # -- queries --------------------------------------------------------------

    def by_name(self, name: str) -> Timeline:
        """Timeline of the (unique) process with this name."""
        matches = [pid for pid, n in self._names.items() if n == name]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} processes named {name!r}")
        return self.timelines[matches[0]]

    def records(self) -> Iterable[TraceRecord]:
        """All records across processes in time order."""
        out: list[TraceRecord] = []
        for timeline in self.timelines.values():
            out.extend(timeline.records)
        return sorted(out, key=lambda r: (r.time, r.pid))

    def render(self, limit: int = 50) -> str:
        """Human-readable trace (first ``limit`` records)."""
        lines = []
        for rec in list(self.records())[:limit]:
            if rec.kind == "speed":
                lines.append(
                    f"{rec.time:10.3f}  {rec.name:30s} speed={rec.value:.3f}"
                    f"  [{rec.detail}]"
                )
            else:
                lines.append(
                    f"{rec.time:10.3f}  {rec.name:30s} END ({rec.detail})"
                )
        return "\n".join(lines)
