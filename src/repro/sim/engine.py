"""The simulation engine: exact fluid advancement between rate-change events.

The engine owns simulated time, the event queue, and the process table.  It
delegates *all* performance modelling to a :class:`RateModel` (the cluster
package provides the real one): whenever the set of running segments
changes, the engine calls :meth:`RateModel.resolve` to obtain each process's
speed, and between events it calls :meth:`RateModel.accrue` so the model can
integrate usage counters (CPU seconds, bytes moved, NIC flits, ...) for the
monitoring samplers.

Because processes advance linearly between events, segment completions can
be scheduled exactly — the simulation has no time-step discretisation error
and its cost scales with the number of rate changes, not with simulated
duration.
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Sequence

from repro.errors import ConfigError, ProcessCrash, SimulationError
from repro.sim.events import CalendarQueue, Event, EventQueue
from repro.sim.stats import SimStats
from repro.sim.process import (
    Condition,
    ProcessState,
    Segment,
    SimProcess,
    Sleep,
    Wait,
)

#: Guard against runaway event loops (a real experiment uses ~1e4 events).
MAX_EVENTS = 20_000_000

#: Slack used when clamping residual work after float round-off.
_EPS = 1e-9

#: Engine backends (see :class:`Simulator`); the environment variable
#: ``REPRO_BACKEND`` overrides the default for a whole run (the CI matrix
#: uses it to run the entire test suite on the array backend).
BACKENDS = ("object", "array")


def default_backend() -> str:
    """The backend used when a Simulator/Cluster does not pin one."""
    backend = os.environ.get("REPRO_BACKEND", "object")
    if backend not in BACKENDS:
        raise ConfigError(
            f"REPRO_BACKEND must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


class RateModel(ABC):
    """Performance model plugged into the engine.

    Implementations translate the demand vectors of running segments into
    per-process speeds (fraction of nominal progress per wall second) and
    integrate usage counters between events.
    """

    #: shared counter block; the engine injects its own via :meth:`attach_stats`
    stats: SimStats | None = None

    @abstractmethod
    def resolve(self, running: Sequence[SimProcess], now: float) -> dict[int, float]:
        """Return ``{pid: speed}`` for every running process.

        Speeds are in ``[0, 1]``: 1 means the segment progresses in real
        time, 0.5 means it takes twice its nominal duration.
        """

    def resolve_incremental(
        self,
        running: Sequence[SimProcess],
        now: float,
        dirty: frozenset[int] | None = None,
    ) -> dict[int, float]:
        """Like :meth:`resolve`, but with a hint of *which* pids changed.

        ``dirty`` names the pids whose segment started, changed, or ended
        since the previous resolve; ``None`` means "assume everything
        changed" (the first resolve, or an externally forced one).  The
        default implementation ignores the hint and delegates to
        :meth:`resolve`, so existing models stay correct; models that can
        reuse per-subsystem results (see
        :class:`~repro.cluster.ratemodel.ClusterRateModel`) override this.
        """
        return self.resolve(running, now)

    @abstractmethod
    def accrue(self, running: Sequence[SimProcess], t0: float, t1: float) -> None:
        """Integrate usage counters over ``[t0, t1]`` at the current rates."""

    def attach_stats(self, stats: SimStats) -> None:
        """Adopt the engine's :class:`SimStats` block (shared counters)."""
        self.stats = stats

    def on_process_end(self, proc: SimProcess) -> None:
        """Hook called when a process finishes or is killed (cleanup)."""

    def sync_counters(self) -> None:
        """Flush any internally-buffered usage counters to their dicts.

        Models that accumulate counters in flat arrays (the array backend)
        override this; the engine calls it whenever :meth:`Simulator.run`
        returns so post-run readers always see up-to-date dictionaries.
        """


class UnitRateModel(RateModel):
    """Trivial model: every segment runs at full speed (used in tests)."""

    def resolve(self, running: Sequence[SimProcess], now: float) -> dict[int, float]:
        return {proc.pid: 1.0 for proc in running}

    def accrue(self, running: Sequence[SimProcess], t0: float, t1: float) -> None:
        dt = t1 - t0
        for proc in running:
            seg = proc.current
            if seg is not None:
                proc.add_counter("cpu_seconds", seg.cpu * dt * proc.speed)


class RecurringHandle:
    """Cancellation handle for :meth:`Simulator.every`."""

    def __init__(self) -> None:
        self._event: Event | None = None
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()


class Simulator:
    """Discrete-event driver for fluid-rate simulation.

    Parameters
    ----------
    model:
        The :class:`RateModel` that prices resource contention.  Defaults
        to :class:`UnitRateModel` (no contention), which is useful for unit
        tests of process logic.
    backend:
        ``"object"`` (default) is the reference path: a heap event queue
        and one rate resolve per dispatched event.  ``"array"`` selects
        the performance path: a calendar queue plus *batched dispatch* —
        all events sharing a timestamp run in one batch with a single
        rate resolve at the end (simultaneous events cannot accrue work
        between each other, so the collapsed resolve is state-identical;
        the ``repro check`` backend oracle pins byte-equality).  ``None``
        defers to the ``REPRO_BACKEND`` environment variable.
    """

    def __init__(
        self, model: RateModel | None = None, backend: str | None = None
    ) -> None:
        self.model: RateModel = model if model is not None else UnitRateModel()
        if backend is None:
            backend = default_backend()
        if backend not in BACKENDS:
            raise ConfigError(f"backend must be one of {BACKENDS}, got {backend!r}")
        #: which event loop/queue flavour this simulator runs (read-only)
        self.backend = backend
        self.now: float = 0.0
        self.stats = SimStats()
        self.model.attach_stats(self.stats)
        #: attached span collector (see :mod:`repro.obs`), or None.  Every
        #: emission site is guarded by a None-check, so an unobserved
        #: simulation pays nothing beyond the attribute read.
        self.obs = None
        #: attached invariant checker (see :mod:`repro.check`), or None.
        #: Same pay-for-what-you-use contract as ``obs``: every hook site
        #: is guarded, so an unchecked simulation pays one attribute read.
        self.check = None
        #: attached trace recorder (see :mod:`repro.traces`), or None.
        #: Same pay-for-what-you-use contract: spawn/notify/every are the
        #: only tap sites, each guarded by a None-check.
        self.record = None
        self._queue = CalendarQueue() if backend == "array" else EventQueue()
        self._processes: dict[int, SimProcess] = {}
        self._running: list[SimProcess] = []
        self._ready: deque[SimProcess] = deque()
        self._dirty = False
        #: pids whose segment started/changed/ended since the last resolve;
        #: handed to the rate model so it can re-solve only what moved
        self._dirty_pids: set[int] = set()
        #: set by :meth:`invalidate_rates`: model-global state changed (e.g.
        #: a fault factor), so the next resolve must re-price *everything*
        #: even if some pids were also marked dirty individually
        self._force_full = False
        #: True while spawn order == pid order (the common case), letting
        #: :attr:`processes` skip re-sorting the pid dict on every access
        self._pids_monotonic = True
        self._last_pid = -1
        self._events_dispatched = 0
        self._terminate_hooks: list[Callable[[SimProcess], None]] = []

    # -- public API ---------------------------------------------------------

    @property
    def processes(self) -> tuple[SimProcess, ...]:
        """All processes ever spawned, in pid order.

        Pids are handed out monotonically, so insertion order *is* pid
        order unless a caller spawned pre-built processes out of creation
        order; only then is a sorted view materialised.
        """
        if self._pids_monotonic:
            return tuple(self._processes.values())
        return tuple(self._processes[pid] for pid in sorted(self._processes))

    @property
    def running(self) -> tuple[SimProcess, ...]:
        """Processes currently holding an active segment."""
        return tuple(self._running)

    def process(self, pid: int) -> SimProcess:
        """Look up a process by pid."""
        try:
            return self._processes[pid]
        except KeyError:
            raise SimulationError(f"unknown pid {pid}") from None

    def add_terminate_hook(self, hook: Callable[[SimProcess], None]) -> None:
        """Register a callback fired whenever a process ends (done or killed)."""
        self._terminate_hooks.append(hook)

    def spawn(self, proc: SimProcess, at: float | None = None) -> SimProcess:
        """Register ``proc`` and start it at time ``at`` (default: now)."""
        start = self.now if at is None else at
        if start < self.now:
            raise SimulationError(
                f"cannot spawn {proc.name} in the past ({start} < {self.now})"
            )
        if proc.pid in self._processes:
            raise SimulationError(f"process {proc.name} already spawned")
        if proc.pid < self._last_pid:
            self._pids_monotonic = False
        self._last_pid = max(self._last_pid, proc.pid)
        self._processes[proc.pid] = proc
        if self.record is not None:
            self.record.on_spawn(proc, start)
        self._queue.push(start, lambda: self._start(proc))
        return proc

    def kill(self, proc: SimProcess, reason: str = "killed") -> None:
        """Terminate ``proc`` immediately (its ``finally`` blocks run)."""
        if proc.state.terminal or proc.state is ProcessState.NEW and proc.sim is None:
            return
        proc._close()
        self._finish(proc, ProcessState.KILLED, reason)

    def invalidate_rates(self) -> None:
        """Force a full rate re-resolve after the current event.

        Call when model-global state changed outside any segment — fault
        factors, filesystem health — so cached per-subsystem solves cannot
        be trusted.  The resolve happens at the engine's normal point in
        the event loop (current simulated time, after the event's action).
        """
        self._dirty = True
        self._force_full = True

    def interrupt(self, proc: SimProcess, exc: ProcessCrash) -> None:
        """Throw ``exc`` into ``proc`` at the current simulated time.

        The exception surfaces inside the process body at its current
        ``yield``, so ``finally`` blocks run and the body may catch it and
        continue (graceful degradation) or let it crash the process.  Only
        :class:`ProcessCrash` subclasses may be delivered: anything else
        escaping a body would abort the whole simulation.
        """
        if not isinstance(exc, ProcessCrash):
            raise SimulationError(
                f"can only interrupt with ProcessCrash subclasses, got {type(exc).__name__}"
            )
        if proc.state.terminal or proc.sim is None:
            return
        proc.wake_version += 1  # cancel pending sleep/segment wakes
        if proc.waiting_on is not None:
            proc.waiting_on.discard(proc)
            proc.waiting_on = None
        self._step(proc, exc)

    def schedule(self, time: float, action: Callable[[], None]) -> Event:
        """Run ``action`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        return self._queue.push(time, action)

    def call_in(self, delay: float, action: Callable[[], None]) -> Event:
        """Run ``action`` after ``delay`` simulated seconds."""
        return self.schedule(self.now + delay, action)

    def every(
        self,
        interval: float,
        action: Callable[[float], None],
        start: float | None = None,
        end: float = math.inf,
    ) -> RecurringHandle:
        """Invoke ``action(time)`` every ``interval`` seconds until ``end``.

        The monitoring stack uses this for 1 Hz sampling.
        """
        if interval <= 0:
            raise SimulationError("recurring interval must be > 0")
        handle = RecurringHandle()
        first = self.now if start is None else start
        if self.record is not None:
            self.record.on_every(interval, first, end)

        def fire(at: float) -> None:
            if handle.cancelled or at > end:
                return
            action(at)
            nxt = at + interval
            if nxt <= end:
                handle._event = self._queue.push(nxt, lambda: fire(nxt))

        handle._event = self._queue.push(first, lambda: fire(first))
        return handle

    def notify(self, condition: Condition) -> None:
        """Release all waiters of ``condition``; they resume in this event."""
        if self.record is not None:
            self.record.on_notify(condition)
        for proc in condition.notify_all():
            if proc.state is ProcessState.WAITING:
                proc.state = ProcessState.NEW  # transitional; _drain re-steps it
                proc.waiting_on = None
                self._ready.append(proc)

    def run(
        self,
        until: float = math.inf,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        ``stop_when`` is checked after every event; when it returns True
        the loop exits immediately (recurring background events such as
        monitoring ticks would otherwise keep an idle simulation running
        to ``until``).

        Returns the final simulated time.  Counters are integrated all the
        way to ``until`` when it is finite and no stop condition fired, so
        sampling windows that end in quiet periods account usage correctly.
        """
        try:
            return self._run_batched(until, stop_when)
        finally:
            # Array-backed models buffer counters; make every run() exit a
            # consistent read point for samplers, apps and fingerprints.
            self.model.sync_counters()
            if self._events_dispatched:
                self.stats.counters["events_dispatched"] = self._events_dispatched

    def _run_batched(
        self, until: float, stop_when: Callable[[], bool] | None
    ) -> float:
        """Event loop: batch each timestamp into a single resolve.

        Events at one timestamp cannot accrue work between each other
        (``dt == 0``), so only the *final* rate resolve of a timestamp is
        observable; per-event intermediate resolves would be pure
        recomputation — worse, their transient speed changes would
        re-stamp completion ETAs from the same ``(now, remaining)`` line
        with different rounding, so batching is what keeps the two
        backends bit-for-bit interchangeable.  Actions and ready-queue
        drains still run strictly in the serial order (per-event),
        preserving the dispatch sequence and tie-break contract.

        Both backends share this loop; the backend choice selects the
        event-queue implementation and the rate model, which the
        ``array_backend`` differential oracle holds to byte-identical
        fingerprints.
        """
        if stop_when is not None and stop_when():
            return self.now
        queue = self._queue
        while True:
            tnext = queue.peek_time()
            if tnext is None or tnext > until:
                break
            self._advance(tnext)
            batch = 0
            while (event := queue.pop_at(tnext)) is not None:
                if self.check is not None:
                    self.check.on_event(self, event.time)
                self._count_event()
                event.action()
                self._drain_ready()
                batch += 1
                if stop_when is not None and stop_when():
                    if self._dirty:
                        self._resolve()
                    return self.now
            self.stats.count("event_batches")
            if batch > 1:
                self.stats.count("batched_events", batch - 1)
            if self._dirty:
                self._resolve()
            if stop_when is not None and stop_when():
                return self.now
        if math.isfinite(until) and until > self.now:
            self._advance(until)
        return self.now

    def _count_event(self) -> None:
        # The running total lands in stats once per run() (not per event).
        self._events_dispatched += 1
        if self._events_dispatched > MAX_EVENTS:
            raise SimulationError("event budget exhausted (runaway simulation?)")

    # -- internals ------------------------------------------------------------

    def _start(self, proc: SimProcess) -> None:
        proc._bind(self)
        proc.start_time = self.now
        if self.obs is not None:
            self.obs.on_process_start(proc)
        self._ready.append(proc)

    def _advance(self, t: float) -> None:
        dt = t - self.now
        if dt < 0:
            raise SimulationError("time went backwards")
        if dt == 0:
            return
        if self.check is not None:
            self.check.on_advance(self, t)
        if self._running:
            with self.stats.timer("accrue"):
                self.model.accrue(self._running, self.now, t)
            for proc in self._running:
                left = proc.remaining - proc.speed * dt
                proc.remaining = left if left > 0.0 else 0.0
        self.now = t

    def _drain_ready(self) -> None:
        while self._ready:
            proc = self._ready.popleft()
            if proc.state.terminal:
                continue
            self._step(proc)

    def _step(self, proc: SimProcess, exc: BaseException | None = None) -> None:
        was_running = proc.state is ProcessState.RUNNING
        try:
            item = proc._step(exc)
        except ProcessCrash as crash:
            if was_running and proc in self._running:
                self._running.remove(proc)
                self._mark_dirty(proc)
            self._finish(proc, ProcessState.KILLED, f"crash: {crash}")
            return
        if was_running and proc in self._running and not isinstance(item, Segment):
            self._running.remove(proc)
            self._mark_dirty(proc)
        if item is None:
            self._finish(proc, ProcessState.DONE, "done")
        elif isinstance(item, Segment):
            proc.current = item
            proc.remaining = item.work
            proc.wake_version += 1
            if proc.state is not ProcessState.RUNNING:
                proc.state = ProcessState.RUNNING
                self._running.append(proc)
            self._mark_dirty(proc)
            if self.obs is not None:
                self.obs.on_segment_start(proc)
        elif isinstance(item, Sleep):
            proc.current = None
            proc.state = ProcessState.SLEEPING
            proc.wake_version += 1
            if self.obs is not None:
                self.obs.on_segment_end(proc)
            version = proc.wake_version
            self._queue.push(self.now + item.duration, lambda: self._wake(proc, version))
        elif isinstance(item, Wait):
            proc.current = None
            proc.state = ProcessState.WAITING
            proc.wake_version += 1
            if self.obs is not None:
                self.obs.on_segment_end(proc)
            proc.waiting_on = item.condition
            item.condition._add(proc)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"process {proc.name} yielded {item!r}")

    def _wake(self, proc: SimProcess, version: int) -> None:
        if proc.wake_version != version or proc.state.terminal:
            return
        self._ready.append(proc)

    def _on_segment_done(self, proc: SimProcess, version: int) -> None:
        if proc.wake_version != version or proc.state is not ProcessState.RUNNING:
            return
        if proc.remaining > _EPS * max(1.0, proc.current.work if proc.current else 1.0):
            # Rates changed since this wake was scheduled; a fresh wake was
            # (or will be) scheduled by resolve.  Ignore the stale one.
            return
        proc.remaining = 0.0
        self._ready.append(proc)

    def _finish(self, proc: SimProcess, state: ProcessState, reason: str) -> None:
        if proc in self._running:
            self._running.remove(proc)
            self._mark_dirty(proc)
        if proc.waiting_on is not None:
            # Drop the stale waiter entry; the pointer itself is kept so
            # terminate hooks can see which condition the process died on.
            proc.waiting_on.discard(proc)
        proc.state = state
        proc.current = None
        proc.end_time = self.now
        proc.exit_reason = reason
        proc.wake_version += 1
        self.model.on_process_end(proc)
        if self.obs is not None:
            self.obs.on_process_end(proc)
        for hook in self._terminate_hooks:
            hook(proc)

    def _mark_dirty(self, proc: SimProcess) -> None:
        self._dirty = True
        self._dirty_pids.add(proc.pid)

    def _resolve(self) -> None:
        self._dirty = False
        # A dirty flag without recorded pids means an external actor poked
        # ``sim._dirty`` directly (tests, tracing helpers); a set
        # ``_force_full`` flag means :meth:`invalidate_rates` ran.  Either
        # way, fall back to a full resolve so arbitrary model-state changes
        # are re-priced even for pids whose segments did not move.
        if self._force_full or not self._dirty_pids:
            dirty = None
        else:
            dirty = frozenset(self._dirty_pids)
        self._force_full = False
        self._dirty_pids.clear()
        self.stats.count("resolves")
        if dirty is None:
            self.stats.count("full_resolves")
        if self.obs is not None:
            self.obs.on_resolve(self.now, len(self._running), dirty)
        with self.stats.timer("resolve"):
            speeds = self.model.resolve_incremental(self._running, self.now, dirty)
        if self.check is not None:
            self.check.after_resolve(self, speeds, dirty)
        skipped = 0
        for proc in self._running:
            new_speed = speeds.get(proc.pid, 0.0)
            if dirty is not None and proc.pid not in dirty and new_speed == proc.speed:
                # Clean process, unchanged speed: its pending completion
                # event (scheduled from the same remaining/speed line) is
                # still exact — skip the reschedule.
                skipped += 1
                continue
            proc.speed = new_speed
            proc.wake_version += 1
            if math.isfinite(proc.remaining) and proc.speed > 0.0:
                eta = self.now + proc.remaining / proc.speed
                version = proc.wake_version
                self._queue.push(eta, lambda p=proc, v=version: self._on_segment_done(p, v))
        if skipped:
            self.stats.count("reschedules_skipped", skipped)
        if self._dirty:
            # resolve() itself may kill processes (e.g. OOM policies); loop.
            self._resolve()
