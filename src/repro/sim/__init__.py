"""Deterministic fluid-rate / discrete-event simulation engine.

The engine models computation as *fluid progress*: every simulated process
executes a sequence of :class:`~repro.sim.process.Segment` objects, each of
which declares the resource rates it wants (CPU share, cache footprint,
memory bandwidth, network flows, I/O).  Whenever the set of active segments
changes, the engine asks the attached :class:`~repro.sim.engine.RateModel`
to re-solve resource allocation; between such events every process advances
linearly at its granted speed, so the simulation is exact (no time-step
error) and fast (events only where rates change).
"""

from repro.sim.engine import RateModel, Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.process import (
    ProcessState,
    Segment,
    SimProcess,
    Sleep,
)
from repro.sim.rng import make_rng, spawn_rng

__all__ = [
    "Event",
    "EventQueue",
    "ProcessState",
    "RateModel",
    "Segment",
    "SimProcess",
    "Simulator",
    "Sleep",
    "make_rng",
    "spawn_rng",
]
