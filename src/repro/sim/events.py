"""Event queue for the simulation engine.

A tiny binary-heap priority queue with deterministic tie-breaking: events at
the same timestamp fire in insertion order, so two runs of the same script
always interleave identically.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, sequence)``; the sequence number is a
    monotone insertion counter, which makes simultaneous events fire in the
    order they were scheduled.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at ``time`` and return a cancellable handle."""
        if math.isnan(time):
            raise SimulationError("event time is NaN")
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest pending event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
