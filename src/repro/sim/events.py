"""Event queues for the simulation engine.

Two interchangeable implementations share one contract:

* events fire in non-decreasing ``time`` order;
* **equal-timestamp events fire in insertion order** (FIFO).  Each queue
  stamps pushes with a monotone sequence number and orders events by
  ``(time, seq)``, so two runs of the same script always interleave
  identically — and so the heap and calendar queues are byte-for-byte
  interchangeable.  ``tests/sim/test_events.py`` pins this contract for
  both.

:class:`EventQueue` is a binary heap (O(log n) per op, the reference).
:class:`CalendarQueue` is a calendar queue (Brown, CACM 1988): events
hash into day buckets by timestamp, giving amortised O(1) push/pop when
event times are roughly uniform — the regime the simulator's completion
and sampling events live in.  The engine's array backend uses it.
"""

from __future__ import annotations

import itertools
import heapq
import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, sequence)``; the sequence number is a
    monotone insertion counter, which makes simultaneous events fire in the
    order they were scheduled.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at ``time`` and return a cancellable handle."""
        if math.isnan(time):
            raise SimulationError("event time is NaN")
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest pending event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pop_at(self, time: float) -> Event | None:
        """Pop the earliest event only if it is due exactly at ``time``.

        The engine's batched dispatch uses this to drain one timestamp's
        events (including ones pushed *during* the batch) without
        re-peeking the next distinct timestamp.
        """
        if self.peek_time() != time:
            return None
        return self.pop()


class CalendarQueue:
    """Calendar queue (Brown 1988) with the same deterministic contract.

    Events are hashed into ``nbuckets`` day-buckets of ``width`` seconds;
    a pop scans forward from the current day, so with a width near the
    mean event separation both push and pop are amortised O(1).  The
    structure resizes itself (doubling/halving buckets, re-estimating the
    width from the live events) as the population changes.

    Ordering is identical to :class:`EventQueue`: ``(time, seq)`` with a
    monotone per-queue sequence counter — equal-timestamp events pop in
    insertion order.  Pops are expected to be monotone in time (the
    engine never travels backwards); a push earlier than the last popped
    time still works, at the cost of rewinding the calendar pointer.
    """

    MIN_BUCKETS = 8
    MAX_BUCKETS = 1 << 20
    #: events sampled from the front of the queue to estimate the width
    WIDTH_SAMPLE = 24
    #: day indices are clamped here so ``time / width`` can never reach
    #: ``inf`` (which would break ``math.floor``); far-future times all
    #: collapse into one day-bucket, where the in-bucket sort still orders
    #: them correctly
    MAX_DAY = float(1 << 62)

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._size = 0
        #: non-finite timestamps (``inf``) live outside the calendar;
        #: all equal, so FIFO order is plain insertion order
        self._far: list[Event] = []
        #: last scan result ``(event, bucket)``: the engine peeks a
        #: timestamp and immediately pops at it, so remembering where the
        #: front event lives saves a full re-scan per pop.  Validated
        #: structurally on use (still that bucket's head, not cancelled)
        #: and invalidated by any push that could take the front spot.
        self._head: tuple[Event, list[Event]] | None = None
        self._init_calendar(width=1.0, nbuckets=self.MIN_BUCKETS, start=0.0)

    # -- internal layout ----------------------------------------------------

    def _init_calendar(self, width: float, nbuckets: int, start: float) -> None:
        self._width = width
        self._nbuckets = nbuckets
        self._buckets: list[list[Event]] = [[] for _ in range(nbuckets)]
        self._head = None
        self._set_position(start)

    def _set_position(self, time: float) -> None:
        """Point the calendar at the day containing ``time``."""
        self._last_time = time
        self._cur_day = self._day_of(time)

    def _day_of(self, time: float) -> int:
        # The same expression is used when hashing a push and when testing
        # a bucket head during a scan, so the two can never disagree — the
        # float-``bucket_top`` formulation this replaced lost the
        # "top > time" invariant to rounding once day * width was large,
        # and the scan then span forever without progressing.
        return math.floor(max(min(time / self._width, self.MAX_DAY), -self.MAX_DAY))

    def _bucket_of(self, time: float) -> int:
        return self._day_of(time) % self._nbuckets

    def _resize(self, nbuckets: int) -> None:
        nbuckets = max(self.MIN_BUCKETS, min(self.MAX_BUCKETS, nbuckets))
        if nbuckets == self._nbuckets:
            return
        events = [ev for bucket in self._buckets for ev in bucket if not ev.cancelled]
        events.sort()
        self._size = len(events)
        self._init_calendar(
            width=self._estimate_width(events),
            nbuckets=nbuckets,
            start=events[0].time if events else self._last_time,
        )
        for ev in events:
            insort(self._buckets[self._bucket_of(ev.time)], ev)

    def _estimate_width(self, events: list[Event]) -> float:
        """Mean gap of the first few queued events, scaled per Brown."""
        sample = events[: self.WIDTH_SAMPLE]
        gaps = []
        for a, b in zip(sample, sample[1:]):
            gap = b.time - a.time
            # Events that are "simultaneous" up to accumulated rounding
            # (completion bursts land within a few ulps of each other)
            # must not drag the width down to ulp scale, where day
            # arithmetic loses all precision.
            if gap > 64.0 * math.ulp(max(abs(a.time), abs(b.time), 1.0)):
                gaps.append(gap)
        if not gaps:
            return self._width
        width = 3.0 * (sum(gaps) / len(gaps))
        return width if width > 0.0 and math.isfinite(width) else self._width

    # -- queue protocol -----------------------------------------------------

    def __len__(self) -> int:
        return self._size + len(self._far)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at ``time`` and return a cancellable handle."""
        if math.isnan(time):
            raise SimulationError("event time is NaN")
        event = Event(time=time, seq=next(self._counter), action=action)
        if not math.isfinite(time):
            self._far.append(event)
            return event
        if time < self._last_time:
            # Push into the past (relative to the scan pointer): rewind so
            # the forward scan cannot walk over it.
            self._set_position(time)
        if self._head is not None and time < self._head[0].time:
            # The new event outranks the remembered front (equal times
            # keep the head: the incumbent holds the lower sequence).
            self._head = None
        insort(self._buckets[self._bucket_of(time)], event)
        self._size += 1
        if self._size > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)
        return event

    def _scan(self, pop: bool) -> Event | None:
        """Find (and optionally remove) the earliest live event."""
        while True:
            if self._size == 0:
                break
            day = self._cur_day
            for _ in range(self._nbuckets):
                bucket = self._buckets[day % self._nbuckets]
                while bucket and bucket[0].cancelled:
                    del bucket[0]
                    self._size -= 1
                # An event belongs to the walked day iff its own day index
                # is not later; both sides come from the same `_day_of`
                # floor, so the test is exact and a jump to an event's day
                # always finds it on the next pass.
                if bucket and self._day_of(bucket[0].time) <= day:
                    event = bucket[0]
                    if pop:
                        del bucket[0]
                        self._size -= 1
                        self._set_position(event.time)
                        if self._size < self._nbuckets // 2:
                            self._resize(self._nbuckets // 2)
                    return event
                day += 1
            # A full year without a hit: the population is sparse.  Jump
            # straight to the globally earliest event (cancelled heads were
            # pruned above, so live bucket heads are exact minima).
            heads = [b[0] for b in self._buckets if b]
            if not heads:
                continue  # pruning emptied everything; size check exits
            earliest = min(heads)
            self._set_position(earliest.time)
        if self._far:
            # Only non-finite timestamps remain.
            if pop:
                return self._far.pop(0)
            return self._far[0]
        return None

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        self._head = None
        return self._scan(pop=True)

    def _peek(self) -> Event | None:
        """Earliest live event, via the remembered head when still valid."""
        head = self._head
        if head is not None:
            event, bucket = head
            if bucket and bucket[0] is event and not event.cancelled:
                return event
            self._head = None
        event = self._scan(pop=False)
        if event is not None and self._size:
            # _scan only falls back to the ``_far`` list once the calendar
            # is empty, so a positive size means this event sits at the
            # head of its own bucket.
            bucket = self._buckets[self._bucket_of(event.time)]
            if bucket and bucket[0] is event:
                self._head = (event, bucket)
        return event

    def peek_time(self) -> float | None:
        """Time of the earliest pending event without popping it."""
        event = self._peek()
        return event.time if event is not None else None

    def pop_at(self, time: float) -> Event | None:
        """Pop the earliest event only if it is due exactly at ``time``."""
        event = self._peek()
        # Exact comparison is the contract: the engine passes back the very
        # float `peek_time` returned, and batching must not merge distinct
        # timestamps however close:
        if event is None or event.time != time:  # repro-lint: disable=RL004
            return None
        head = self._head
        self._head = None
        if head is not None and head[0] is event:
            # Pop the validated head in place — same effect as a popping
            # scan, without re-walking the calendar.
            bucket = head[1]
            del bucket[0]
            self._size -= 1
            self._set_position(event.time)
            if self._size < self._nbuckets // 2:
                self._resize(self._nbuckets // 2)
            return event
        return self._scan(pop=True)
