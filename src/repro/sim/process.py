"""Simulated processes and the work segments they execute.

A *process* is a Python generator pinned to one logical core of one node.
It repeatedly yields work items:

:class:`Segment`
    Fluid work with a resource-demand vector.  The engine advances the
    segment at the speed granted by the rate model and wakes the process
    when the segment's ``work`` is exhausted (``math.inf`` keeps it running
    until the process is stopped externally — anomaly generators use this).
:class:`Sleep`
    Idle for a fixed simulated duration (no resource demands).
:class:`Wait`
    Block until a :class:`Condition` is notified (used for barriers and
    message completion in the MPI layer).

The demand vocabulary mirrors the subsystems of the paper: CPU duty cycle,
cache footprints/intensities and miss behaviour, memory bandwidth, network
flows, and filesystem traffic.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Mapping, Sequence

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

#: Cache level names, innermost first.
CACHE_LEVELS = ("L1", "L2", "L3")


@dataclass(frozen=True)
class Flow:
    """A point-to-point network demand.

    Attributes
    ----------
    dst:
        Destination node name.
    rate:
        Bytes/second the flow wants to push at full speed.
    """

    dst: str
    rate: float


@dataclass(frozen=True)
class IODemand:
    """Filesystem traffic demanded by a segment.

    Attributes
    ----------
    fs:
        Name of the shared filesystem to talk to.
    write_bw / read_bw:
        Bytes/second of disk traffic demanded at full speed.
    meta_ops:
        Metadata operations (create/open/close/unlink/stat) per second.
    """

    fs: str
    write_bw: float = 0.0
    read_bw: float = 0.0
    meta_ops: float = 0.0


@dataclass(frozen=True)
class Segment:
    """One fluid unit of work with its resource-demand vector.

    Parameters
    ----------
    work:
        Nominal duration in seconds when running at full speed on the
        reference core.  ``math.inf`` runs until the process is stopped.
    cpu:
        Demanded duty cycle on the pinned logical core, in ``[0, 1]``.
        ``cpuoccupy`` at 30% intensity demands ``0.3``; a compute phase
        demands ``1.0``.
    cache_footprint:
        Working-set bytes per cache level, e.g. ``{"L1": 16*KB, ...}``.
        Levels are inclusive: a 1 MiB working set occupies 1 MiB of L3 and
        fully occupies L1/L2.
    cache_intensity:
        Relative access pressure used to weight cache-occupancy contests.
        0 means the segment barely touches the cache.
    mpki_base / mpki_extra:
        Last-level-cache misses per kilo-instruction when unmolested, and
        the additional MPKI incurred when the working set is fully evicted.
    miss_cpi_penalty:
        Relative CPI slowdown at full eviction (e.g. 0.8 means the segment
        runs 1.8x slower when its cache lines are always evicted).
    mem_bw / mem_bw_extra:
        Bytes/second demanded from the socket memory pool at full speed,
        and the extra demand at full cache eviction (refetches).
    flows:
        Network flows this segment keeps active.
    io:
        Filesystem traffic this segment keeps active.
    ips:
        Instructions per (full-speed) second, used by the PAPI-style
        sampler to report instruction counts and MPKI.
    label:
        Free-form tag for tracing/debugging.
    """

    work: float
    cpu: float = 1.0
    cache_footprint: Mapping[str, float] = field(default_factory=dict)
    cache_intensity: float = 0.0
    mpki_base: float = 0.0
    mpki_extra: float = 0.0
    miss_cpi_penalty: float = 0.0
    mem_bw: float = 0.0
    mem_bw_extra: float = 0.0
    flows: Sequence[Flow] = ()
    io: IODemand | None = None
    ips: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.work < 0 or math.isnan(self.work):
            raise SimulationError(f"segment work must be >= 0, got {self.work}")
        if not 0.0 <= self.cpu <= 1.0:
            raise SimulationError(f"segment cpu duty must be in [0,1], got {self.cpu}")
        for name in ("cache_intensity", "mpki_base", "mpki_extra", "miss_cpi_penalty",
                     "mem_bw", "mem_bw_extra", "ips"):
            if getattr(self, name) < 0:
                raise SimulationError(f"segment {name} must be >= 0")
        for level, size in self.cache_footprint.items():
            if level not in CACHE_LEVELS:
                raise SimulationError(f"unknown cache level {level!r}")
            if size < 0:
                raise SimulationError("cache footprint must be >= 0")


@dataclass(frozen=True)
class Sleep:
    """Idle for ``duration`` simulated seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0 or math.isnan(self.duration):
            raise SimulationError(f"sleep duration must be >= 0, got {self.duration}")


class Condition:
    """A waitable broadcast condition (engine-level synchronisation)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[SimProcess] = []

    @property
    def waiters(self) -> tuple["SimProcess", ...]:
        return tuple(self._waiters)

    def _add(self, proc: SimProcess) -> None:
        self._waiters.append(proc)

    def discard(self, proc: "SimProcess") -> bool:
        """Remove ``proc`` from the waiter list if present (crash cleanup)."""
        try:
            self._waiters.remove(proc)
        except ValueError:
            return False
        return True

    def notify_all(self) -> list["SimProcess"]:
        """Release every waiter; returns the released processes."""
        released, self._waiters = self._waiters, []
        return released


@dataclass(frozen=True)
class Wait:
    """Block until ``condition`` is notified."""

    condition: Condition


Yieldable = Segment | Sleep | Wait
Body = Generator[Yieldable, None, None]


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    NEW = "new"
    RUNNING = "running"
    SLEEPING = "sleeping"
    WAITING = "waiting"
    DONE = "done"
    KILLED = "killed"

    @property
    def terminal(self) -> bool:
        return self in (ProcessState.DONE, ProcessState.KILLED)


_pid_counter = itertools.count(1)


class SimProcess:
    """A simulated OS process pinned to one logical core.

    Parameters
    ----------
    name:
        Human-readable identifier (unique names make traces legible).
    body:
        Callable returning the generator to execute; it receives this
        process object, through which it can reach the simulator
        (``proc.sim``), its placement (``proc.node``, ``proc.core``), and
        the node's memory ledger.
    node:
        Name of the node this process runs on.
    core:
        Logical core index within the node.
    """

    def __init__(
        self,
        name: str,
        body: Callable[["SimProcess"], Body],
        node: str,
        core: int,
    ) -> None:
        self.pid: int = next(_pid_counter)
        self.name = name
        self.node = node
        self.core = core
        self._body_factory = body
        self._gen: Body | None = None
        self.sim: "Simulator | None" = None
        self.state = ProcessState.NEW
        self.current: Segment | None = None
        self.remaining: float = 0.0
        self.speed: float = 0.0
        #: incremented every time the process is (re)scheduled; wake events
        #: carry the version they were computed for so stale ones are ignored
        self.wake_version: int = 0
        #: the condition this process is blocked on (while WAITING); kept
        #: pointing at the last condition after death so synchronisation
        #: layers (e.g. Barrier.leave) can tell whether it had arrived
        self.waiting_on: Condition | None = None
        self.start_time: float | None = None
        self.end_time: float | None = None
        self.exit_reason: str = ""
        #: cumulative counters maintained by the rate model (cpu seconds,
        #: bytes moved, cache misses, ...)
        self.counters: dict[str, float] = {}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"<SimProcess {self.name} pid={self.pid} node={self.node} "
            f"core={self.core} state={self.state.value}>"
        )

    # -- engine-side API ---------------------------------------------------

    def _bind(self, sim: "Simulator") -> None:
        if self.sim is not None:
            raise SimulationError(f"process {self.name} already bound to a simulator")
        self.sim = sim
        self._gen = self._body_factory(self)

    def _step(self, exc: BaseException | None = None) -> Yieldable | None:
        """Advance the generator; returns the next yieldable or None if done."""
        assert self._gen is not None
        try:
            if exc is not None:
                return self._gen.throw(exc)
            return self._gen.send(None)
        except StopIteration:
            return None

    def _close(self) -> None:
        if self._gen is not None:
            self._gen.close()

    # -- body-side helpers ---------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (valid while the body is executing)."""
        assert self.sim is not None
        return self.sim.now

    def add_counter(self, key: str, amount: float) -> None:
        """Accumulate into a named per-process counter."""
        self.counters[key] = self.counters.get(key, 0.0) + amount

    @property
    def runtime(self) -> float:
        """Wall time from spawn to completion (requires a finished process)."""
        if self.start_time is None or self.end_time is None:
            raise SimulationError(f"process {self.name} has not finished")
        return self.end_time - self.start_time
