"""Seeded random-number-generator helpers.

Determinism is a core requirement: every experiment in the benchmark harness
must regenerate the same rows on every run.  All randomness therefore flows
from :func:`make_rng`, and independent components derive child streams with
:func:`spawn_rng` keyed by a stable string so that adding a new consumer
never perturbs existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x48504153  # "HPAS"


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a root generator from an integer seed (default: the HPAS seed)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rng(parent_seed: int | None, key: str) -> np.random.Generator:
    """Derive an independent, reproducible child stream.

    The child is keyed by ``(parent_seed, key)`` through SHA-256, so streams
    are stable across runs and uncorrelated across keys.
    """
    base = DEFAULT_SEED if parent_seed is None else parent_seed
    digest = hashlib.sha256(f"{base}:{key}".encode()).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)
