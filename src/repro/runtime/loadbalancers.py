"""Load balancers for the object runtime.

The paper compares two Charm++ balancers on a 3D stencil (Fig. 13):

* ``LBObjOnly`` — uses only object properties (their loads), assuming all
  cores are equally fast.  Blind to the cpuoccupy anomaly.
* ``GreedyRefineLB`` — measures each core's delivered capacity and places
  objects greedily by *predicted completion time*, steering work away
  from cores the anomaly occupies — until so many cores are occupied that
  avoidance no longer pays (>= half the cores, the crossover the paper
  highlights).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class WorkObject:
    """One migratable work object with a per-iteration load (seconds)."""

    oid: int
    load: float

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ConfigError("object load must be positive")


class LoadBalancer(ABC):
    """Maps objects onto cores before each rebalancing step."""

    name = "balancer"

    @abstractmethod
    def assign(
        self,
        objects: list[WorkObject],
        cores: list[int],
        core_speeds: dict[int, float],
    ) -> dict[int, list[WorkObject]]:
        """Return ``{core: objects}``; every object appears exactly once.

        ``core_speeds`` holds each core's last *measured* delivered speed
        (1.0 = nominal); cores never measured default to 1.0.
        """

    @staticmethod
    def _greedy_lpt(
        objects: list[WorkObject],
        cores: list[int],
        speed_of,
    ) -> dict[int, list[WorkObject]]:
        """Greedy longest-processing-time placement by predicted finish."""
        if not cores:
            raise ConfigError("need at least one core")
        assignment: dict[int, list[WorkObject]] = {c: [] for c in cores}
        heap = [(0.0, core) for core in cores]
        heapq.heapify(heap)
        for obj in sorted(objects, key=lambda o: (-o.load, o.oid)):
            finish, core = heapq.heappop(heap)
            assignment[core].append(obj)
            heapq.heappush(heap, (finish + obj.load / speed_of(core), core))
        return assignment


class LBObjOnly(LoadBalancer):
    """Balance object loads assuming homogeneous cores."""

    name = "LBObjOnly"

    def assign(
        self,
        objects: list[WorkObject],
        cores: list[int],
        core_speeds: dict[int, float],
    ) -> dict[int, list[WorkObject]]:
        return self._greedy_lpt(objects, cores, lambda core: 1.0)


class GreedyRefineLB(LoadBalancer):
    """Balance by predicted completion using measured core capacity.

    Mirrors Charm++'s GreedyRefineLB: a greedy pass ordered by load, with
    per-core speed estimates from the previous iteration's measurements.
    """

    name = "GreedyRefineLB"

    #: speeds below this are clamped — a core is never written off entirely
    MIN_SPEED = 0.05

    def assign(
        self,
        objects: list[WorkObject],
        cores: list[int],
        core_speeds: dict[int, float],
    ) -> dict[int, list[WorkObject]]:
        def speed_of(core: int) -> float:
            return max(self.MIN_SPEED, core_speeds.get(core, 1.0))

        return self._greedy_lpt(objects, cores, speed_of)
