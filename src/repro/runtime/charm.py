"""A Charm++-style iterative object runtime on the simulated cluster.

The runtime owns a set of migratable work objects (the 3D stencil's
chares) and a set of cores on one node.  Each iteration it asks the load
balancer for an assignment, runs one worker process per loaded core, and
measures each core's *delivered* speed from the worker's wall time — the
measurement GreedyRefineLB feeds back into the next assignment.  Anomaly
processes sharing the cores (cpuoccupy in Fig. 13) slow the workers
through the ordinary CPU contention model, so the balancers' differences
emerge from the same substrate as everything else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.errors import ConfigError
from repro.mpi.comm import Barrier
from repro.runtime.loadbalancers import LoadBalancer, WorkObject
from repro.sim.process import Body, Segment, SimProcess
from repro.units import MB


@dataclass(frozen=True)
class IterationStats:
    """Timing of one runtime iteration."""

    index: int
    duration: float  # wall time of the slowest worker
    assignment_sizes: dict[int, int]  # objects per core


class CharmRuntime:
    """Runs iterations of object work under a load balancer.

    Parameters
    ----------
    cluster / node:
        Placement; all cores belong to this node.
    cores:
        Logical cores available to the runtime.
    objects:
        The migratable work objects.
    balancer:
        The load-balancing strategy.
    iterations:
        Iterations to execute.
    """

    def __init__(
        self,
        cluster: Cluster,
        node: str | int,
        cores: list[int],
        objects: list[WorkObject],
        balancer: LoadBalancer,
        iterations: int = 20,
    ) -> None:
        if not cores or not objects or iterations < 1:
            raise ConfigError("need cores, objects and iterations >= 1")
        self.cluster = cluster
        self.node = cluster.node(node).name
        self.cores = list(cores)
        self.objects = list(objects)
        self.balancer = balancer
        self.iterations = iterations
        self.stats: list[IterationStats] = []
        self._speeds: dict[int, float] = {}
        self._done = False

    # -- execution -----------------------------------------------------------

    def run(self, timeout: float = math.inf) -> list[IterationStats]:
        """Simulate all iterations; returns per-iteration stats."""
        controller = self.cluster.spawn(
            name=f"charm-rts@{self.node}",
            body=self._controller,
            node=self.node,
            core=self.cores[0],
        )
        sim = self.cluster.sim
        sim.run(until=sim.now + timeout, stop_when=lambda: self._done)
        if not self._done:
            raise ConfigError("runtime did not finish within the timeout")
        _ = controller
        return self.stats

    def _controller(self, proc: SimProcess) -> Body:
        previous: dict[int, int] = {}
        for it in range(self.iterations):
            assignment = self.balancer.assign(
                self.objects, self.cores, dict(self._speeds)
            )
            obs = self.cluster.sim.obs
            if obs is not None and previous:
                placed = {
                    o.oid: core for core, objs in assignment.items() for o in objs
                }
                moved = sum(1 for oid, core in placed.items() if previous.get(oid) != core)
                if moved:
                    obs.instant(
                        "charm",
                        "migrate",
                        ("charm", self.balancer.name),
                        args={"iteration": it, "moved": moved},
                    )
            previous = {
                o.oid: core for core, objs in assignment.items() for o in objs
            }
            loaded = {c: objs for c, objs in assignment.items() if objs}
            barrier = Barrier(self.cluster.sim, len(loaded) + 1, name=f"charm-it{it}")
            t0 = proc.now
            workers: dict[int, tuple[SimProcess, float]] = {}
            for core, objs in sorted(loaded.items()):
                work = sum(o.load for o in objs)
                worker = self.cluster.spawn(
                    name=f"charm-w{core}-it{it}@{self.node}",
                    body=lambda wproc, _work=work, _b=barrier: self._worker(
                        wproc, _work, _b
                    ),
                    node=self.node,
                    core=core,
                )
                workers[core] = (worker, work)
            yield from barrier.wait()
            duration = proc.now - t0
            if obs is not None:
                obs.complete(
                    "charm",
                    f"iteration {it}",
                    ("charm", self.balancer.name),
                    start=t0,
                    end=proc.now,
                    args={"workers": len(loaded)},
                )
            for core, (worker, work) in workers.items():
                elapsed = worker.counters.get("charm_compute_seconds", 0.0)
                if elapsed > 0:
                    self._speeds[core] = work / elapsed
            self.stats.append(
                IterationStats(
                    index=it,
                    duration=duration,
                    assignment_sizes={c: len(o) for c, o in assignment.items()},
                )
            )
        self._done = True

    def _worker(self, proc: SimProcess, work: float, barrier: Barrier) -> Body:
        t0 = proc.now
        yield Segment(
            work=work,
            cpu=1.0,
            ips=2.0e9,
            cache_footprint={"L3": MB},
            cache_intensity=1.0,
            mpki_base=1.0,
            mpki_extra=5.0,
            miss_cpi_penalty=0.3,
            mem_bw=1.0e9,
            label="stencil objects",
        )
        # Compute-only elapsed time: the capacity measurement the
        # GreedyRefine balancer feeds on (barrier wait excluded).
        proc.add_counter("charm_compute_seconds", proc.now - t0)
        yield from barrier.wait()

    # -- results ----------------------------------------------------------------

    def mean_iteration_time(self, skip: int = 1) -> float:
        """Average iteration duration, skipping warmup iterations."""
        if not self.stats:
            raise ConfigError("runtime has not run")
        samples = [s.duration for s in self.stats[skip:]] or [
            s.duration for s in self.stats
        ]
        return sum(samples) / len(samples)
