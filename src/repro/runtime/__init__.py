"""Charm++-style object runtime with pluggable load balancers (Sec. 5.3)."""

from repro.runtime.loadbalancers import (
    GreedyRefineLB,
    LBObjOnly,
    LoadBalancer,
    WorkObject,
)
from repro.runtime.charm import CharmRuntime, IterationStats

__all__ = [
    "CharmRuntime",
    "GreedyRefineLB",
    "IterationStats",
    "LBObjOnly",
    "LoadBalancer",
    "WorkObject",
]
