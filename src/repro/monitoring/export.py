"""Exporting collected metrics (CSV / JSONL / dict-of-arrays).

Real LDMS deployments store samples in CSV files consumed by analysis
pipelines; these helpers produce the same artefacts from a
:class:`~repro.monitoring.service.MetricService` so downstream tooling
(pandas, the paper's analysis scripts) can be pointed at simulated data.
The JSONL flavour — one record per sample, ``{"time": ..., "node": ...,
metric: value, ...}`` — matches what streaming collectors emit and what
the :mod:`repro.obs` trace pipeline consumes.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.monitoring.service import MetricService


def to_csv_text(service: MetricService, node: str | int) -> str:
    """One node's samples as CSV text: ``time`` plus one metric column."""
    name = f"node{node}" if isinstance(node, int) else node
    times = service.timestamps()
    if times.size == 0:
        raise ConfigError("no samples collected")
    metrics = service.metric_names
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time"] + metrics)
    columns = [service.series(name, m) for m in metrics]
    for i, t in enumerate(times):
        writer.writerow([f"{t:.3f}"] + [repr(float(col[i])) for col in columns])
    return buffer.getvalue()


def write_csv(service: MetricService, node: str | int, path: str | Path) -> Path:
    """Write one node's samples to a CSV file; returns the path."""
    path = Path(path)
    path.write_text(to_csv_text(service, node))
    return path


def to_jsonl_text(service: MetricService, node: str | int) -> str:
    """One node's samples as JSONL: one ``{"time", "node", metrics...}``
    record per sample, keys sorted for byte-stable output."""
    name = f"node{node}" if isinstance(node, int) else node
    times = service.timestamps()
    if times.size == 0:
        raise ConfigError("no samples collected")
    metrics = service.metric_names
    columns = [service.series(name, m) for m in metrics]
    lines = []
    for i, t in enumerate(times):
        record: dict[str, object] = {"time": float(t), "node": name}
        for metric, col in zip(metrics, columns):
            record[metric] = float(col[i])
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_jsonl(service: MetricService, node: str | int, path: str | Path) -> Path:
    """Write one node's samples to a JSONL file; returns the path."""
    path = Path(path)
    path.write_text(to_jsonl_text(service, node))
    return path


def read_jsonl(path: str | Path) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Load a JSONL file produced by :func:`write_jsonl`.

    Returns ``(times, {metric: series})`` — the inverse of the export,
    so round-trips are exact.
    """
    path = Path(path)
    records = []
    for line in path.read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    if not records:
        return np.empty(0), {}
    first = records[0]
    if "time" not in first:
        raise ConfigError(f"{path} is not a metric export (no time field)")
    metrics = sorted(k for k in first if k not in ("time", "node"))
    times = np.asarray([r["time"] for r in records], dtype=float)
    series = {
        m: np.asarray([r[m] for r in records], dtype=float) for m in metrics
    }
    return times, series


def read_csv(path: str | Path) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Load a CSV produced by :func:`write_csv`.

    Returns ``(times, {metric: series})`` — the inverse of the export,
    so round-trips are exact.
    """
    path = Path(path)
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [[float(cell) for cell in row] for row in reader]
    if header[0] != "time":
        raise ConfigError(f"{path} is not a metric export (no time column)")
    data = np.asarray(rows, dtype=float)
    if data.size == 0:
        return np.empty(0), {m: np.empty(0) for m in header[1:]}
    times = data[:, 0]
    series = {metric: data[:, i + 1] for i, metric in enumerate(header[1:])}
    return times, series
