"""The metric collection service (LDMS aggregator analogue).

Attach a :class:`MetricService` to a cluster and it samples every node at a
fixed interval (1 Hz by default, like Voltrino's LDMS configuration),
storing time series it can hand to the analytics pipeline::

    svc = MetricService(cluster)
    svc.attach()
    cluster.sim.run(until=600)
    util = svc.series("node0", "user::procstat")
"""

from __future__ import annotations

import difflib
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import ConfigError
from repro.monitoring.samplers import Sampler, default_samplers
from repro.sim.rng import spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.stream import ObsSink


class MetricService:
    """Samples node counters periodically and stores named time series."""

    def __init__(
        self,
        cluster: Cluster,
        interval: float = 1.0,
        samplers: list[Sampler] | None = None,
        noise: float = 0.0,
        seed: int | None = None,
    ) -> None:
        if interval <= 0:
            raise ConfigError("sampling interval must be positive")
        if noise < 0:
            raise ConfigError("noise must be >= 0")
        self.cluster = cluster
        self.interval = interval
        self.samplers = samplers if samplers is not None else default_samplers()
        #: relative multiplicative measurement noise (sampling jitter,
        #: counter-read skew); deterministic per (seed, node, metric)
        self.noise = noise
        self._rng = spawn_rng(seed, "metric-service")
        self.times: list[float] = []
        #: node -> metric -> list of values (aligned with ``times``)
        self.data: dict[str, dict[str, list[float]]] = {
            name: {} for name in cluster.nodes
        }
        # When every sampler declares the counters it reads, per-tick
        # deltas cover only their union; a single None falls back to
        # delta-ing every counter on the node.
        keys: set[str] | None = set()
        for sampler in self.samplers:
            declared = sampler.counter_keys()
            if declared is None:
                keys = None
                break
            keys.update(declared)
        self._delta_keys: tuple[str, ...] | None = (
            None if keys is None else tuple(sorted(keys))
        )
        if self._delta_keys is None:
            self._last_counters = {
                name: dict(node.counters) for name, node in cluster.nodes.items()
            }
        else:
            self._last_counters = {
                name: {
                    key: node.counters.get(key, 0.0) for key in self._delta_keys
                }
                for name, node in cluster.nodes.items()
            }
        self._last_time: float | None = None
        self._handle = None
        self._sinks: list["ObsSink"] = []

    # -- streaming sinks -------------------------------------------------------

    def add_sink(self, sink: "ObsSink") -> None:
        """Register a streaming sink notified at every sampling tick."""
        if sink in self._sinks:
            raise ConfigError("sink is already registered")
        self._sinks.append(sink)

    def remove_sink(self, sink: "ObsSink") -> None:
        """Unregister a previously added sink."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            raise ConfigError("sink is not registered") from None

    @property
    def sinks(self) -> tuple["ObsSink", ...]:
        return tuple(self._sinks)

    # -- collection -----------------------------------------------------------

    def attach(self, start: float | None = None, end: float = float("inf")) -> None:
        """Begin sampling on the cluster's simulator."""
        if self._handle is not None:
            raise ConfigError("metric service already attached")
        self._handle = self.cluster.sim.every(self.interval, self._tick, start=start, end=end)

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def attached(self) -> bool:
        """Whether the service is currently sampling."""
        return self._handle is not None

    def _tick(self, now: float) -> None:
        dt = self.interval if self._last_time is None else now - self._last_time
        if dt <= 0:
            return
        with self.cluster.sim.stats.timer("monitoring"):
            self._sample(now, dt)
        self._last_time = now

    def _sample(self, now: float, dt: float) -> None:
        # Integrate background OS activity before reading the counters so
        # `sys::procstat` shows the jitter floor.
        self.cluster.model.accrue_background(dt)
        self.times.append(now)
        keys = self._delta_keys
        sinks = self._sinks
        for name, node in self.cluster.nodes.items():
            last = self._last_counters[name]
            counters = node.counters
            if keys is None:
                current = {key: counters.get(key, 0.0) for key in counters}
            else:
                current = {key: counters.get(key, 0.0) for key in keys}
            delta = {
                key: value - last.get(key, 0.0) for key, value in current.items()
            }
            self._last_counters[name] = current
            store = self.data[name]
            tick_values: dict[str, float] | None = {} if sinks else None
            for sampler in self.samplers:
                values = sampler.sample(node, delta, dt)
                for raw, value in values.items():
                    if self.noise > 0 and not sampler.gauge:
                        value *= 1.0 + self.noise * float(self._rng.standard_normal())
                    metric = f"{raw}::{sampler.name}"
                    store.setdefault(metric, []).append(value)
                    if tick_values is not None:
                        tick_values[metric] = value
            if tick_values is not None:
                with self.cluster.sim.stats.timer("obs"):
                    for sink in sinks:
                        sink.on_metric_sample(now, name, tick_values)

    # -- access --------------------------------------------------------------

    @property
    def metric_names(self) -> list[str]:
        names: list[str] = []
        for sampler in self.samplers:
            names.extend(sampler.metric_names())
        return names

    def series(self, node: str | int, metric: str) -> np.ndarray:
        """Time series of one metric on one node."""
        name = f"node{node}" if isinstance(node, int) else node
        try:
            store = self.data[name]
        except KeyError:
            known = ", ".join(sorted(self.data))
            close = difflib.get_close_matches(name, sorted(self.data), n=3)
            hint = (
                f" — did you mean {', '.join(repr(c) for c in close)}?"
                if close
                else ""
            )
            raise ConfigError(
                f"unknown node {name!r} (known nodes: {known}){hint}"
            ) from None
        try:
            return np.asarray(store[metric], dtype=float)
        except KeyError:
            available = sorted(store)
            close = difflib.get_close_matches(metric, available, n=3)
            if close:
                hint = f"did you mean {', '.join(repr(c) for c in close)}?"
            elif available:
                hint = f"available: {', '.join(available)}"
            else:
                hint = "no samples collected yet (is the service attached?)"
            raise ConfigError(
                f"no series for {metric!r} on {name!r} — {hint}"
            ) from None

    def timestamps(self) -> np.ndarray:
        return np.asarray(self.times, dtype=float)

    def matrix(self, node: str | int, metrics: list[str] | None = None) -> np.ndarray:
        """Stack several metrics into a (T, M) array for analytics."""
        metrics = metrics if metrics is not None else self.metric_names
        cols = [self.series(node, m) for m in metrics]
        return np.column_stack(cols) if cols else np.empty((0, 0))
