"""LDMS-style monitoring: samplers, 1 Hz collection, time-series store."""

from repro.monitoring.samplers import (
    AriesNicSampler,
    MeminfoSampler,
    PapiSampler,
    PerCoreProcstatSampler,
    ProcstatSampler,
    Sampler,
    VmstatSampler,
)
from repro.monitoring.service import MetricService

__all__ = [
    "AriesNicSampler",
    "MeminfoSampler",
    "MetricService",
    "PapiSampler",
    "PerCoreProcstatSampler",
    "ProcstatSampler",
    "Sampler",
    "VmstatSampler",
]
