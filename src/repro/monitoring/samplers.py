"""Metric samplers mirroring the LDMS configuration on Voltrino.

The paper collects node metrics through LDMS samplers and names metrics
``<metric>::<sampler>`` (e.g. ``user::procstat``).  Each sampler here reads
the node's cumulative counters (integrated by the rate model) and converts
the delta since the previous tick into the units the real sampler reports:

* ``procstat`` — CPU utilisation percentages (user/sys/idle),
* ``meminfo`` — memory capacity gauges in bytes,
* ``vmstat`` — free pages and paging rates,
* ``spapiHASW`` — PAPI hardware counters (instructions, cache misses),
* ``aries_nic_mmr`` — Aries NIC flit counters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cluster.node import Node

#: Aries network flit payload in bytes (one flit per 32 B of traffic).
ARIES_FLIT_BYTES = 32.0

#: Linux page size used by the vmstat sampler.
PAGE_BYTES = 4096.0


class Sampler(ABC):
    """One LDMS sampler: turns counter deltas into named metrics."""

    #: sampler name used in ``metric::sampler`` identifiers
    name: str = "sampler"

    #: True when this sampler reports exact gauges (kernel-maintained
    #: values like meminfo) rather than rate-derived readings; the metric
    #: service never adds measurement noise to gauges
    gauge: bool = False

    def metric_names(self) -> list[str]:
        """Fully-qualified metric names this sampler emits."""
        return [f"{m}::{self.name}" for m in self.raw_metric_names()]

    def counter_keys(self) -> tuple[str, ...] | None:
        """Node counters this sampler reads from ``delta``, or ``None``.

        When every attached sampler declares its keys, the metric service
        computes per-tick deltas only for their union instead of every
        counter on the node; ``None`` (the default) keeps the
        full-delta behaviour for samplers that inspect arbitrary keys.
        """
        return None

    @abstractmethod
    def raw_metric_names(self) -> list[str]: ...

    @abstractmethod
    def sample(self, node: Node, delta: dict[str, float], dt: float) -> dict[str, float]:
        """Produce raw-name -> value for one interval of length ``dt``.

        ``delta`` holds per-counter increments since the previous tick.
        """


class ProcstatSampler(Sampler):
    """CPU utilisation from /proc/stat, in percent of the whole node."""

    name = "procstat"

    def counter_keys(self) -> tuple[str, ...]:
        return ("cpu_user_seconds", "cpu_sys_seconds")

    def raw_metric_names(self) -> list[str]:
        return ["user", "sys", "idle"]

    def sample(self, node: Node, delta: dict[str, float], dt: float) -> dict[str, float]:
        total = node.logical_cores * dt
        user = 100.0 * delta.get("cpu_user_seconds", 0.0) / total
        sys = 100.0 * delta.get("cpu_sys_seconds", 0.0) / total
        return {"user": user, "sys": sys, "idle": max(0.0, 100.0 - user - sys)}


class MeminfoSampler(Sampler):
    """Memory gauges from /proc/meminfo, in bytes (exact, no noise)."""

    name = "meminfo"
    gauge = True

    def counter_keys(self) -> tuple[str, ...]:
        return ()

    def raw_metric_names(self) -> list[str]:
        return ["MemTotal", "MemFree", "MemUsed", "Active"]

    def sample(self, node: Node, delta: dict[str, float], dt: float) -> dict[str, float]:
        mem = node.memory
        return {
            "MemTotal": mem.capacity,
            "MemFree": mem.free,
            "MemUsed": mem.used,
            "Active": mem.used - mem.baseline,
        }


class VmstatSampler(Sampler):
    """Paging/free-page metrics from /proc/vmstat."""

    name = "vmstat"

    def counter_keys(self) -> tuple[str, ...]:
        return ("io_read_bytes", "io_write_bytes")

    def raw_metric_names(self) -> list[str]:
        return ["nr_free_pages", "pgpgin", "pgpgout"]

    def sample(self, node: Node, delta: dict[str, float], dt: float) -> dict[str, float]:
        return {
            "nr_free_pages": node.memory.free / PAGE_BYTES,
            "pgpgin": delta.get("io_read_bytes", 0.0) / PAGE_BYTES / dt,
            "pgpgout": delta.get("io_write_bytes", 0.0) / PAGE_BYTES / dt,
        }


class PapiSampler(Sampler):
    """PAPI hardware counters (the spapiHASW sampler on Voltrino).

    Counters are reported as rates per second, matching how the paper
    derives IPS and MPKI from consecutive samples.
    """

    name = "spapiHASW"

    def counter_keys(self) -> tuple[str, ...]:
        return ("instructions", "l2_misses", "l3_misses")

    def raw_metric_names(self) -> list[str]:
        return ["INST_RETIRED:ANY", "L2_RQSTS:MISS", "LLC_MISSES"]

    def sample(self, node: Node, delta: dict[str, float], dt: float) -> dict[str, float]:
        return {
            "INST_RETIRED:ANY": delta.get("instructions", 0.0) / dt,
            "L2_RQSTS:MISS": delta.get("l2_misses", 0.0) / dt,
            "LLC_MISSES": delta.get("l3_misses", 0.0) / dt,
        }


class AriesNicSampler(Sampler):
    """Aries NIC machine registers (flit counters), as rates per second."""

    name = "aries_nic_mmr"

    def counter_keys(self) -> tuple[str, ...]:
        return ("nic_tx_bytes", "nic_rx_bytes")

    def raw_metric_names(self) -> list[str]:
        return [
            "AR_NIC_NETMON_ORB_EVENT_CNTR_REQ_FLITS",
            "AR_NIC_NETMON_ORB_EVENT_CNTR_RSP_FLITS",
        ]

    def sample(self, node: Node, delta: dict[str, float], dt: float) -> dict[str, float]:
        return {
            "AR_NIC_NETMON_ORB_EVENT_CNTR_REQ_FLITS": delta.get("nic_tx_bytes", 0.0)
            / ARIES_FLIT_BYTES
            / dt,
            "AR_NIC_NETMON_ORB_EVENT_CNTR_RSP_FLITS": delta.get("nic_rx_bytes", 0.0)
            / ARIES_FLIT_BYTES
            / dt,
        }


class PerCoreProcstatSampler(Sampler):
    """Per-logical-core utilisation (the per-cpu rows of /proc/stat).

    Not part of the default set (the paper's node-level analysis does not
    need it), but available for finer-grained studies: per-core features
    pinpoint *which* core an orphan process occupies.
    """

    name = "procstat_percore"

    def __init__(self, logical_cores: int) -> None:
        self.logical_cores = logical_cores

    def counter_keys(self) -> tuple[str, ...]:
        return tuple(
            f"cpu_core{core}_seconds" for core in range(self.logical_cores)
        )

    def raw_metric_names(self) -> list[str]:
        return [f"user{core}" for core in range(self.logical_cores)]

    def sample(self, node: Node, delta: dict[str, float], dt: float) -> dict[str, float]:
        return {
            f"user{core}": 100.0 * delta.get(f"cpu_core{core}_seconds", 0.0) / dt
            for core in range(self.logical_cores)
        }


def default_samplers() -> list[Sampler]:
    """The Voltrino LDMS sampler set used throughout the paper."""
    return [
        ProcstatSampler(),
        MeminfoSampler(),
        VmstatSampler(),
        PapiSampler(),
        AriesNicSampler(),
    ]
