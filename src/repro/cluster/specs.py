"""Hardware specifications for the simulated machines.

Two machines from the paper are provided as presets:

* :meth:`MachineSpec.voltrino` — the Haswell partition of Voltrino, a Cray
  XC40m at Sandia: 2× Intel Xeon E5-2698 v3 (16 cores/socket, 2-way SMT,
  32 KiB L1d / 256 KiB L2 per core, 40 MiB L3 per socket), 125 GB RAM.
* :meth:`MachineSpec.chameleon` — a Chameleon Cloud bare-metal node:
  2× Intel Xeon E5-2670 v3 (12 cores/socket, 30 MiB L3), 125 GB RAM.

Bandwidth and penalty constants are calibration parameters of the fluid
model, not datasheet numbers; they were chosen so the single-machine
baselines (STREAM best rate, OSU peak bandwidth, app IPS) land near the
values visible in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.units import GB, GB10, KB, MB


@dataclass(frozen=True)
class CacheSpec:
    """Sizes of the three cache levels.

    ``l1`` and ``l2`` are per physical core (shared by its hyperthreads);
    ``l3`` is per socket (shared by all cores of the socket).
    """

    l1: float = 32 * KB
    l2: float = 256 * KB
    l3: float = 40 * MB

    def __post_init__(self) -> None:
        if not (0 < self.l1 <= self.l2 <= self.l3):
            raise ConfigError("cache sizes must satisfy 0 < L1 <= L2 <= L3")

    def size(self, level: str) -> float:
        """Capacity of ``level`` ("L1" / "L2" / "L3") in bytes."""
        try:
            return {"L1": self.l1, "L2": self.l2, "L3": self.l3}[level]
        except KeyError:
            raise ConfigError(f"unknown cache level {level!r}") from None


@dataclass(frozen=True)
class MachineSpec:
    """Full per-node hardware description plus fluid-model calibration.

    Attributes
    ----------
    sockets / cores_per_socket / smt:
        Topology: ``sockets * cores_per_socket`` physical cores, each with
        ``smt`` hardware threads (logical cores).
    cache:
        Cache sizes (see :class:`CacheSpec`).
    mem_bytes:
        Physical memory per node.  No swap — mirroring Voltrino, where
        over-allocating processes are killed.
    mem_bw_per_socket:
        Sustained memory bandwidth of one socket's controllers (bytes/s).
    core_mem_bw:
        Bandwidth a single core can extract by itself (bytes/s); limits
        single-threaded STREAM.
    smt_throughput:
        Combined throughput of two busy hyperthreads relative to one
        (1.3 means each runs at 0.65 when both are active).
    bw_latency_alpha:
        Strength of the latency degradation other traffic imposes on a
        core's achievable memory bandwidth (see
        :mod:`repro.memory.bandwidth`).
    cache_miss_cascade:
        Per-level weights ``(c1, c2, c3)`` translating eviction at
        L1/L2/L3 into extra last-level misses and stall cost; an L3
        eviction costs full memory latency, an L1 eviction mostly hits L2.
    nic_bw:
        Injection bandwidth of the node's NIC (bytes/s).
    os_noise_util:
        Background OS utilization fraction per node (shows up as ``sys``
        in procstat, like real OS jitter).
    """

    name: str = "voltrino"
    sockets: int = 2
    cores_per_socket: int = 16
    smt: int = 2
    cache: CacheSpec = field(default_factory=CacheSpec)
    mem_bytes: float = 125 * GB
    mem_bw_per_socket: float = 32 * GB10
    core_mem_bw: float = 12.5 * GB10
    smt_throughput: float = 1.3
    bw_latency_alpha: float = 1.0
    cache_miss_cascade: tuple[float, float, float] = (0.15, 0.35, 1.0)
    nic_bw: float = 10 * GB10
    os_noise_util: float = 0.004
    #: hardware-dependent scaling of observed miss counts — a smaller,
    #: less-aggressively-prefetching cache shows more misses for the same
    #: eviction fraction (Chameleon in the paper's Fig. 3)
    miss_amplification: float = 1.0

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1 or self.smt < 1:
            raise ConfigError("sockets, cores_per_socket and smt must be >= 1")
        if self.smt > 2:
            raise ConfigError("the SMT model supports at most 2 threads per core")
        if self.mem_bytes <= 0 or self.mem_bw_per_socket <= 0 or self.core_mem_bw <= 0:
            raise ConfigError("memory sizes/bandwidths must be positive")
        if not 1.0 <= self.smt_throughput <= 2.0:
            raise ConfigError("smt_throughput must be in [1, 2]")
        if len(self.cache_miss_cascade) != 3 or any(c < 0 for c in self.cache_miss_cascade):
            raise ConfigError("cache_miss_cascade must be three non-negative weights")

    # -- derived topology ---------------------------------------------------

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def logical_cores(self) -> int:
        return self.physical_cores * self.smt

    def socket_of(self, logical_core: int) -> int:
        """Socket index of a logical core (threads are socket-major)."""
        self._check_core(logical_core)
        return self.physical_core_of(logical_core) // self.cores_per_socket

    def physical_core_of(self, logical_core: int) -> int:
        """Physical core of a logical core.

        Logical core numbering follows Linux on the reference systems:
        logical ``k`` and ``k + physical_cores`` are hyperthread siblings.
        """
        self._check_core(logical_core)
        return logical_core % self.physical_cores

    def sibling_of(self, logical_core: int) -> int | None:
        """The hyperthread sibling of a logical core (None without SMT)."""
        self._check_core(logical_core)
        if self.smt == 1:
            return None
        phys = self.physical_core_of(logical_core)
        return phys + self.physical_cores if logical_core < self.physical_cores else phys

    def _check_core(self, logical_core: int) -> None:
        if not 0 <= logical_core < self.logical_cores:
            raise ConfigError(
                f"logical core {logical_core} out of range [0, {self.logical_cores})"
            )

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """Copy the spec with some fields replaced (for ablations)."""
        return replace(self, **kwargs)

    # -- presets --------------------------------------------------------------

    @classmethod
    def voltrino(cls) -> "MachineSpec":
        """Haswell partition of Voltrino (Cray XC40m, Xeon E5-2698 v3)."""
        return cls()

    @classmethod
    def voltrino_knl(cls) -> "MachineSpec":
        """Knights Landing partition of Voltrino (Xeon Phi 7250).

        Not used by the paper's experiments (they all run on Haswell), but
        included for completeness of the machine description.
        """
        return cls(
            name="voltrino-knl",
            sockets=1,
            cores_per_socket=68,
            smt=2,  # KNL has 4-way SMT; the model supports 2, which the
            # paper's experiments never exercise on KNL anyway.
            # KNL has no shared L3; model MCDRAM-as-cache as a 16 GiB
            # last level so the hierarchy stays three-deep.
            cache=CacheSpec(l1=32 * KB, l2=512 * KB, l3=16 * GB),
            mem_bw_per_socket=90 * GB10,
            core_mem_bw=6 * GB10,
            smt_throughput=1.5,
        )

    @classmethod
    def chameleon(cls) -> "MachineSpec":
        """Chameleon Cloud bare-metal node (Xeon E5-2670 v3)."""
        return cls(
            name="chameleon",
            sockets=2,
            cores_per_socket=12,
            cache=CacheSpec(l1=32 * KB, l2=256 * KB, l3=30 * MB),
            mem_bw_per_socket=28 * GB10,
            nic_bw=1.25 * GB10,  # 10 GbE
            miss_amplification=2.2,
        )
