"""The cluster rate model: prices every subsystem's contention each event.

``resolve`` runs three stages whenever the engine's active set changes:

1. **Per node** — cache occupancy (L1/L2 per physical core, L3 per
   socket), processor sharing with an SMT penalty, and per-socket memory
   bandwidth.  The output is a provisional speed per process plus its
   observable rates (instructions/s, L2/L3 misses/s, memory bytes/s).
2. **Network** — every active flow, scaled by its owner's provisional
   speed, enters the adaptive-routing max-min solver; communication-bound
   processes slow down by their worst flow's grant ratio.
3. **Storage** — filesystem demands are priced by each
   :class:`~repro.storage.filesystem.SharedFilesystem`'s coupled pools.

``accrue`` integrates the rates computed by the last ``resolve`` into
per-process and per-node counters, which is what the LDMS-style samplers
read at 1 Hz.

Resolves are *incremental*: the engine passes the set of pids whose
segment changed, stage 1 re-solves only the nodes hosting a dirty pid
(clean nodes reuse their cached per-node result bit-for-bit), and the
network/storage stages are skipped outright when their demand signature
is unchanged since the previous resolve (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.cache.model import (
    CacheDemand,
    cascade_miss_factor,
    inclusive_footprints,
    solve_occupancy,
)
from repro.memory.bandwidth import ShareFn, solve_bandwidth
from repro.network.flows import FlowRequest, FlowSolver
from repro.resources.fairshare import max_min_fair_share
from repro.sim.engine import RateModel
from repro.sim.process import CACHE_LEVELS, IODemand, SimProcess
from repro.sim.stats import SimStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster


@dataclass
class _NodeSolve:
    """Cached stage-1 outcome for one node (valid while its tenants'
    segments are untouched)."""

    pids: tuple[int, ...]
    speeds: dict[int, float]
    rates: dict[int, dict[str, float]]
    miss_factor: dict[int, float]


@dataclass
class _StageSolve:
    """Cached network/storage stage outcome, keyed by a demand signature."""

    signature: tuple
    ratios: dict[int, float]
    rates: dict[int, dict[str, float]]
    remote: dict[str, dict[str, float]] = field(default_factory=dict)


class ClusterRateModel(RateModel):
    """Translates segment demand vectors into speeds and counter rates.

    Parameters
    ----------
    cluster:
        The cluster whose nodes/network/filesystems provide capacities.
    share_fn:
        Bandwidth-sharing discipline for memory (ablation knob).
    cache_sharpness:
        Exponent of the cache-occupancy contest (ablation knob).
    k_paths:
        Paths considered by adaptive routing; 1 = static routing.
    """

    #: L2 misses are more plentiful than L3 misses; this factor converts
    #: the modelled L3 MPKI into an L2 MPKI for the PAPI-style sampler.
    L2_MISS_FACTOR = 2.5

    def __init__(
        self,
        cluster: "Cluster",
        share_fn: ShareFn = max_min_fair_share,
        cache_sharpness: float = 1.0,
        k_paths: int = 4,
        incremental: bool = True,
    ) -> None:
        self.cluster = cluster
        self.share_fn = share_fn
        self.cache_sharpness = cache_sharpness
        #: re-solve only dirty nodes and skip unchanged network/storage
        #: stages; setting False re-prices everything on every resolve
        #: (the from-scratch reference path, used by the equivalence tests)
        self.incremental = incremental
        self.stats = SimStats()
        self.flow_solver = (
            FlowSolver(cluster.topology, k_paths=k_paths)
            if cluster.topology is not None
            else None
        )
        if self.flow_solver is not None:
            self.flow_solver.stats = self.stats
        #: per-pid accounting rates from the last resolve
        self._proc_rates: dict[int, dict[str, float]] = {}
        #: per-pid extra node-level rates that land on a *different* node
        #: than the owning process (e.g. rx bytes at a flow's destination)
        self._remote_rates: dict[str, dict[str, float]] = {}
        #: stage caches reused across resolves (incremental mode)
        self._node_cache: dict[str, _NodeSolve] = {}
        self._net_cache: _StageSolve | None = None
        self._io_cache: _StageSolve | None = None

    def attach_stats(self, stats: SimStats) -> None:
        self.stats = stats
        if self.flow_solver is not None:
            self.flow_solver.stats = stats

    @property
    def last_rates(self) -> dict[int, dict[str, float]]:
        """Per-pid accounting rates computed by the last resolve.

        Read-only view consumed by the invariant checker
        (:mod:`repro.check`) to verify capacity conservation; the mapping
        is rebuilt on every resolve, so callers must not hold onto it.
        """
        return self._proc_rates

    def resolve(self, running: Sequence[SimProcess], now: float) -> dict[int, float]:
        return self.resolve_incremental(running, now, None)

    def resolve_incremental(
        self,
        running: Sequence[SimProcess],
        now: float,
        dirty: frozenset[int] | None = None,
    ) -> dict[int, float]:
        if not self.incremental:
            dirty = None
        if dirty is None:
            # Full resolve: forget everything so no stale stage survives.
            self._node_cache.clear()
            self._net_cache = None
            self._io_cache = None
        self._proc_rates = {p.pid: {} for p in running}
        self._remote_rates = defaultdict(lambda: defaultdict(float))
        speeds: dict[int, float] = {}

        by_node: dict[str, list[SimProcess]] = defaultdict(list)
        for proc in running:
            by_node[proc.node].append(proc)

        miss_factor: dict[int, float] = {}
        with self.stats.timer("node"):
            for node_name, procs in by_node.items():
                pids = tuple(p.pid for p in procs)
                cached = self._node_cache.get(node_name)
                if (
                    cached is not None
                    and cached.pids == pids
                    and dirty is not None
                    and dirty.isdisjoint(pids)
                ):
                    # Same tenants, same segments: stage-1 is bit-identical.
                    self.stats.count("nodes_reused")
                    speeds.update(cached.speeds)
                    miss_factor.update(cached.miss_factor)
                    for pid, rates in cached.rates.items():
                        self._proc_rates[pid].update(rates)
                    continue
                self.stats.count("nodes_solved")
                node_speeds = self._solve_node(node_name, procs, miss_factor)
                speeds.update(node_speeds)
                self._node_cache[node_name] = _NodeSolve(
                    pids=pids,
                    speeds=dict(node_speeds),
                    rates={pid: dict(self._proc_rates[pid]) for pid in pids},
                    miss_factor={
                        pid: miss_factor[pid] for pid in pids if pid in miss_factor
                    },
                )
            for stale in [name for name in self._node_cache if name not in by_node]:
                del self._node_cache[stale]

        # Fault-induced compute degradation (node hang / transient
        # slowdown) scales the stage-1 outcome.  The node cache always
        # stores *pre-fault* values, so the factor is applied uniformly on
        # every resolve — cached and fresh nodes alike — and clears the
        # moment the fault reverts (the injector forces a full resolve).
        faults = self.cluster.faults
        if faults is not None and faults.active:
            for proc in running:
                factor = faults.speed_factor(proc.node)
                if factor < 1.0:
                    speeds[proc.pid] *= factor
                    rates = self._proc_rates[proc.pid]
                    for key in rates:
                        rates[key] *= factor

        with self.stats.timer("network"):
            self._solve_network(running, speeds)
        with self.stats.timer("storage"):
            self._solve_storage(running, speeds)
        self._record_rates(running, speeds, miss_factor)
        return speeds

    def accrue(self, running: Sequence[SimProcess], t0: float, t1: float) -> None:
        dt = t1 - t0
        for proc in running:
            rates = self._proc_rates.get(proc.pid)
            if not rates:
                continue
            node = self.cluster.node(proc.node)
            for key, rate in rates.items():
                amount = rate * dt
                proc.add_counter(key, amount)
                node.add_counter(_NODE_COUNTER[key], amount)
            node.add_counter(
                f"cpu_core{proc.core}_seconds",
                rates.get("cpu_user_seconds", 0.0) * dt,
            )
        for node_name, rates in self._remote_rates.items():
            node = self.cluster.node(node_name)
            for key, rate in rates.items():
                node.add_counter(key, rate * dt)

    def on_process_end(self, proc: SimProcess) -> None:
        self.cluster.node(proc.node).memory.free_all(proc.pid)

    def accrue_background(self, dt: float) -> None:
        """OS noise accounting; called by the cluster's sys sampler."""
        for node in self.cluster.nodes.values():
            node.add_counter(
                "cpu_sys_seconds", node.spec.os_noise_util * node.logical_cores * dt
            )

    # -- stage 1: per-node --------------------------------------------------

    def _solve_node(
        self,
        node_name: str,
        procs: list[SimProcess],
        miss_factor: dict[int, float],
    ) -> dict[int, float]:
        node = self.cluster.node(node_name)
        spec = node.spec
        sizes = {lvl: spec.cache.size(lvl) for lvl in CACHE_LEVELS}

        footprints = {
            p.pid: inclusive_footprints(p.current.cache_footprint, sizes)
            for p in procs
            if p.current is not None
        }
        evictions: dict[int, dict[str, float]] = {
            p.pid: dict.fromkeys(CACHE_LEVELS, 0.0) for p in procs
        }

        # Private levels (L1, L2): contested among hyperthread siblings.
        for level in ("L1", "L2"):
            groups: dict[int, list[SimProcess]] = defaultdict(list)
            for p in procs:
                groups[spec.physical_core_of(p.core)].append(p)
            for tenants in groups.values():
                res = solve_occupancy(
                    sizes[level],
                    [
                        CacheDemand(
                            p.pid, footprints[p.pid][level], p.current.cache_intensity
                        )
                        for p in tenants
                    ],
                    sharpness=self.cache_sharpness,
                )
                for p in tenants:
                    evictions[p.pid][level] = res[p.pid].eviction

        # Shared level (L3): contested socket-wide.
        socket_groups: dict[int, list[SimProcess]] = defaultdict(list)
        for p in procs:
            socket_groups[spec.socket_of(p.core)].append(p)
        for tenants in socket_groups.values():
            res = solve_occupancy(
                sizes["L3"],
                [
                    CacheDemand(
                        p.pid, footprints[p.pid]["L3"], p.current.cache_intensity
                    )
                    for p in tenants
                ],
                sharpness=self.cache_sharpness,
            )
            for p in tenants:
                evictions[p.pid]["L3"] = res[p.pid].eviction

        for p in procs:
            miss_factor[p.pid] = cascade_miss_factor(
                evictions[p.pid], spec.cache_miss_cascade
            )

        # CPU: processor sharing per logical core, SMT capacity coupling.
        core_demand: dict[int, float] = defaultdict(float)
        for p in procs:
            core_demand[p.core] += p.current.cpu
        compute_speed: dict[int, float] = {}
        cpu_grant: dict[int, float] = {}
        for p in procs:
            seg = p.current
            sibling = spec.sibling_of(p.core)
            sibling_util = (
                min(1.0, core_demand.get(sibling, 0.0)) if sibling is not None else 0.0
            )
            capacity = 1.0 - (1.0 - spec.smt_throughput / 2.0) * sibling_util
            total = core_demand[p.core]
            if seg.cpu > 0:
                # Time share is what /proc/stat sees (a busy hyperthread is
                # 100% "utilised"); the SMT capacity factor degrades the
                # *throughput* extracted during that time.
                time_share = seg.cpu * min(1.0, 1.0 / total)
                cpu_ratio = (time_share / seg.cpu) * capacity
            else:
                time_share, cpu_ratio = 0.0, 1.0
            cpu_grant[p.pid] = time_share
            cpi = 1.0 + seg.miss_cpi_penalty * miss_factor[p.pid]
            compute_speed[p.pid] = cpu_ratio / cpi

        # Memory bandwidth per socket, then the roofline composition:
        # a segment's nominal time splits into an overlapped compute part
        # (1 - phi) and a memory part (phi), where phi is how close the
        # segment's demand sits to the single-core bandwidth limit.  The
        # achieved speed is the roofline max of both parts — so a fully
        # memory-bound STREAM does not care about losing CPU share, and a
        # compute-bound kernel does not care about bandwidth loss.
        mem_ratio: dict[int, float] = {}
        phi0: dict[int, float] = {}  # memory-time fraction at base traffic
        phi: dict[int, float] = {}  # inflated by eviction refetches
        for tenants in socket_groups.values():
            wants = []
            for p in tenants:
                seg = p.current
                want = seg.mem_bw + seg.mem_bw_extra * miss_factor[p.pid]
                wants.append(min(want, spec.core_mem_bw))  # single-core limit
            grants = solve_bandwidth(
                spec.mem_bw_per_socket,
                wants,
                alpha=spec.bw_latency_alpha,
                share_fn=self.share_fn,
            )
            for p, want, grant in zip(tenants, wants, grants):
                mem_ratio[p.pid] = 1.0 if want <= 0 else min(1.0, grant / want)
                phi[p.pid] = want / spec.core_mem_bw
                phi0[p.pid] = (
                    min(p.current.mem_bw, spec.core_mem_bw) / spec.core_mem_bw
                )

        speeds: dict[int, float] = {}
        for p in procs:
            f0 = phi0[p.pid]
            f = phi[p.pid]
            # Roofline with eviction-inflated memory traffic: the nominal
            # iteration overlaps a compute part (1 - f0) and a memory part
            # (f0); contention stretches compute by 1/compute_speed and
            # memory to f / mem_ratio (extra refetch bytes AND reduced
            # bandwidth).  The achieved speed is baseline over the new max.
            baseline = max(1.0 - f0, f0)
            slowdown = (
                max((1.0 - f0) / compute_speed[p.pid], f / mem_ratio[p.pid]) / baseline
            )
            speeds[p.pid] = 1.0 / slowdown
            self._proc_rates[p.pid]["cpu_user_seconds"] = cpu_grant[p.pid]
            self._proc_rates[p.pid]["mem_bytes"] = (
                f * spec.core_mem_bw * speeds[p.pid]
            )
        return speeds

    # -- stage 2: network -----------------------------------------------------

    def _apply_stage(self, stage: _StageSolve, speeds: dict[int, float]) -> None:
        """Fold a (fresh or cached) stage outcome into speeds and rates."""
        for pid, ratio in stage.ratios.items():
            speeds[pid] *= ratio
        for pid, rates in stage.rates.items():
            self._proc_rates[pid].update(rates)
        for node_name, rates in stage.remote.items():
            remote = self._remote_rates[node_name]
            for counter, rate in rates.items():
                remote[counter] += rate

    def _solve_network(
        self, running: Sequence[SimProcess], speeds: dict[int, float]
    ) -> None:
        if self.flow_solver is None:
            return
        requests: list[FlowRequest] = []
        owners: list[tuple[SimProcess, float]] = []  # (proc, demand)
        key = 0
        for proc in running:
            seg = proc.current
            if seg is None:
                continue
            for flow in seg.flows:
                demand = flow.rate * speeds[proc.pid]
                requests.append(
                    FlowRequest(key=key, src=proc.node, dst=flow.dst, demand=demand)
                )
                owners.append((proc, demand))
                key += 1
        if not requests:
            self._net_cache = None
            return
        # Fault-induced link degradation scales the *granted* ratio, not
        # the demand: scaling demand to zero would hit the ``demand <= 0``
        # branch below and wrongly grant full speed.  The factors join the
        # signature so a link_down apply/revert invalidates the stage memo.
        faults = self.cluster.faults
        if faults is not None and faults.active:
            nic_factors = [
                faults.nic_factor(req.src) * faults.nic_factor(req.dst)
                for req in requests
            ]
        else:
            nic_factors = [1.0] * len(requests)
        signature = tuple(
            (proc.pid, req.src, req.dst, req.demand, nic)
            for req, (proc, _), nic in zip(requests, owners, nic_factors)
        )
        if self._net_cache is not None and self._net_cache.signature == signature:
            # Identical flow demand set: the previous allocation stands.
            self.stats.count("network_stage_skips")
            self._apply_stage(self._net_cache, speeds)
            return
        self.stats.count("network_stage_solves")
        result = self.flow_solver.solve(requests)
        worst_ratio: dict[int, float] = {}
        tx_rates: dict[int, dict[str, float]] = {}
        remote: dict[str, dict[str, float]] = {}
        for request, (proc, demand), nic in zip(requests, owners, nic_factors):
            grant = result.grants[request.key] * nic
            ratio = nic if demand <= 0 else min(1.0, grant / demand)
            worst_ratio[proc.pid] = min(worst_ratio.get(proc.pid, 1.0), ratio)
            rates = tx_rates.setdefault(proc.pid, {"nic_tx_bytes": 0.0})
            rates["nic_tx_bytes"] += grant
            remote.setdefault(request.dst, {"nic_rx_bytes": 0.0})[
                "nic_rx_bytes"
            ] += grant
        # tx accounting already reflects granted (not demanded) rates
        self._net_cache = _StageSolve(
            signature=signature, ratios=worst_ratio, rates=tx_rates, remote=remote
        )
        self._apply_stage(self._net_cache, speeds)

    # -- stage 3: storage -----------------------------------------------------

    def _solve_storage(
        self, running: Sequence[SimProcess], speeds: dict[int, float]
    ) -> None:
        by_fs: dict[str, list[tuple[SimProcess, IODemand]]] = defaultdict(list)
        for proc in running:
            seg = proc.current
            if seg is not None and seg.io is not None:
                io = seg.io
                s = speeds[proc.pid]
                scaled = type(io)(
                    fs=io.fs,
                    write_bw=io.write_bw * s,
                    read_bw=io.read_bw * s,
                    meta_ops=io.meta_ops * s,
                )
                by_fs[io.fs].append((proc, scaled))
        obs = self.cluster.sim.obs
        if obs is not None:
            # Maintain one "busy" span per filesystem covering the stretch
            # of simulated time during which any I/O demand exists.
            for fs_name in self.cluster.filesystems:
                obs.window(
                    ("io", fs_name),
                    "storage",
                    f"busy:{fs_name}",
                    ("storage", fs_name),
                    active=fs_name in by_fs,
                )
        if not by_fs:
            self._io_cache = None
            return
        # Filesystem health (failed OSTs, metadata brownout) joins the
        # signature so degradation events invalidate the stage memo even
        # when the demand set itself is unchanged.
        signature = (
            tuple(
                (p.pid, p.node, fs_name, io.write_bw, io.read_bw, io.meta_ops)
                for fs_name, pairs in by_fs.items()
                for p, io in pairs
            ),
            tuple(
                (fs_name, self.cluster.filesystem(fs_name).health_revision)
                for fs_name in sorted(by_fs)
            ),
        )
        if self._io_cache is not None and self._io_cache.signature == signature:
            # Identical scaled IO demand set: previous grants stand.
            self.stats.count("storage_stage_skips")
            self._apply_stage(self._io_cache, speeds)
            return
        self.stats.count("storage_stage_solves")
        ratios: dict[int, float] = {}
        io_rates: dict[int, dict[str, float]] = {}
        for fs_name, pairs in by_fs.items():
            fs = self.cluster.filesystem(fs_name)
            grants = fs.solve([(p.pid, p.node, io) for p, io in pairs])
            for p, _ in pairs:
                grant = grants[p.pid]
                ratios[p.pid] = min(1.0, grant.ratio)
                io_rates[p.pid] = {
                    "io_write_bytes": grant.write_bw,
                    "io_read_bytes": grant.read_bw,
                    "io_meta_ops": grant.meta_ops,
                }
        self._io_cache = _StageSolve(signature=signature, ratios=ratios, rates=io_rates)
        self._apply_stage(self._io_cache, speeds)

    # -- finalize --------------------------------------------------------------

    def _record_rates(
        self,
        running: Sequence[SimProcess],
        speeds: dict[int, float],
        miss_factor: dict[int, float],
    ) -> None:
        for proc in running:
            seg = proc.current
            if seg is None:
                continue
            rates = self._proc_rates[proc.pid]
            speed = speeds.get(proc.pid, 0.0)
            amp = self.cluster.node(proc.node).spec.miss_amplification
            ips = seg.ips * speed
            mpki = amp * (
                seg.mpki_base + seg.mpki_extra * miss_factor.get(proc.pid, 0.0)
            )
            rates["instructions"] = ips
            rates["l3_misses"] = mpki * ips / 1000.0
            # L2 misses track whichever is larger: the cascade from L3
            # misses, or the demand-miss stream feeding the measured
            # memory traffic (one miss per ~4 cache lines after
            # prefetching) — the latter is what makes L2_RQSTS:MISS the
            # paper's memory-intensiveness indicator (Table 2).
            rates["l2_misses"] = max(
                self.L2_MISS_FACTOR * mpki * ips / 1000.0,
                rates.get("mem_bytes", 0.0) / 256.0,
            )


#: mapping from per-process counter names to node counter names
_NODE_COUNTER = {
    "cpu_user_seconds": "cpu_user_seconds",
    "mem_bytes": "mem_bytes",
    "instructions": "instructions",
    "l2_misses": "l2_misses",
    "l3_misses": "l3_misses",
    "nic_tx_bytes": "nic_tx_bytes",
    "io_write_bytes": "io_write_bytes",
    "io_read_bytes": "io_read_bytes",
    "io_meta_ops": "io_meta_ops",
}
