"""The cluster rate model: prices every subsystem's contention each event.

``resolve`` runs three stages whenever the engine's active set changes:

1. **Per node** — cache occupancy (L1/L2 per physical core, L3 per
   socket), processor sharing with an SMT penalty, and per-socket memory
   bandwidth.  The output is a provisional speed per process plus its
   observable rates (instructions/s, L2/L3 misses/s, memory bytes/s).
2. **Network** — every active flow, scaled by its owner's provisional
   speed, enters the adaptive-routing max-min solver; communication-bound
   processes slow down by their worst flow's grant ratio.
3. **Storage** — filesystem demands are priced by each
   :class:`~repro.storage.filesystem.SharedFilesystem`'s coupled pools.

``accrue`` integrates the rates computed by the last ``resolve`` into
per-process and per-node counters, which is what the LDMS-style samplers
read at 1 Hz.

Resolves are *incremental*: the engine passes the set of pids whose
segment changed, stage 1 re-solves only the nodes hosting a dirty pid
(clean nodes reuse their cached per-node result bit-for-bit), and the
network/storage stages are skipped outright when their demand signature
is unchanged since the previous resolve (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cache.model import (
    CacheDemand,
    cascade_miss_factor,
    inclusive_footprints,
    solve_occupancy,
)
from repro.memory.bandwidth import ShareFn, solve_bandwidth
from repro.network.flows import FlowRequest, FlowSolver
from repro.resources.fairshare import max_min_fair_share, waterfill
from repro.sim.engine import RateModel
from repro.sim.process import CACHE_LEVELS, IODemand, SimProcess
from repro.sim.stats import SimStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster


@dataclass
class _NodeSolve:
    """Cached stage-1 outcome for one node (valid while its tenants'
    segments are untouched)."""

    pids: tuple[int, ...]
    speeds: dict[int, float]
    rates: dict[int, dict[str, float]]
    miss_factor: dict[int, float]


@dataclass
class _StageSolve:
    """Cached network/storage stage outcome, keyed by a demand signature."""

    signature: tuple
    ratios: dict[int, float]
    rates: dict[int, dict[str, float]]
    remote: dict[str, dict[str, float]] = field(default_factory=dict)


class ClusterRateModel(RateModel):
    """Translates segment demand vectors into speeds and counter rates.

    Parameters
    ----------
    cluster:
        The cluster whose nodes/network/filesystems provide capacities.
    share_fn:
        Bandwidth-sharing discipline for memory (ablation knob).
    cache_sharpness:
        Exponent of the cache-occupancy contest (ablation knob).
    k_paths:
        Paths considered by adaptive routing; 1 = static routing.
    """

    #: L2 misses are more plentiful than L3 misses; this factor converts
    #: the modelled L3 MPKI into an L2 MPKI for the PAPI-style sampler.
    L2_MISS_FACTOR = 2.5

    def __init__(
        self,
        cluster: "Cluster",
        share_fn: ShareFn = max_min_fair_share,
        cache_sharpness: float = 1.0,
        k_paths: int = 4,
        incremental: bool = True,
    ) -> None:
        self.cluster = cluster
        self.share_fn = share_fn
        self.cache_sharpness = cache_sharpness
        #: re-solve only dirty nodes and skip unchanged network/storage
        #: stages; setting False re-prices everything on every resolve
        #: (the from-scratch reference path, used by the equivalence tests)
        self.incremental = incremental
        self.stats = SimStats()
        self.flow_solver = (
            FlowSolver(cluster.topology, k_paths=k_paths)
            if cluster.topology is not None
            else None
        )
        if self.flow_solver is not None:
            self.flow_solver.stats = self.stats
        #: per-pid accounting rates from the last resolve
        self._proc_rates: dict[int, dict[str, float]] = {}
        #: per-pid extra node-level rates that land on a *different* node
        #: than the owning process (e.g. rx bytes at a flow's destination)
        self._remote_rates: dict[str, dict[str, float]] = {}
        #: stage caches reused across resolves (incremental mode)
        self._node_cache: dict[str, _NodeSolve] = {}
        self._net_cache: _StageSolve | None = None
        self._io_cache: _StageSolve | None = None

    def attach_stats(self, stats: SimStats) -> None:
        self.stats = stats
        if self.flow_solver is not None:
            self.flow_solver.stats = stats

    @property
    def last_rates(self) -> dict[int, dict[str, float]]:
        """Per-pid accounting rates computed by the last resolve.

        Read-only view consumed by the invariant checker
        (:mod:`repro.check`) to verify capacity conservation; the mapping
        is rebuilt on every resolve, so callers must not hold onto it.
        """
        return self._proc_rates

    def resolve(self, running: Sequence[SimProcess], now: float) -> dict[int, float]:
        return self.resolve_incremental(running, now, None)

    def resolve_incremental(
        self,
        running: Sequence[SimProcess],
        now: float,
        dirty: frozenset[int] | None = None,
    ) -> dict[int, float]:
        if not self.incremental:
            dirty = None
        if dirty is None:
            # Full resolve: forget everything so no stale stage survives.
            self._node_cache.clear()
            self._net_cache = None
            self._io_cache = None
        self._proc_rates = {p.pid: {} for p in running}
        self._remote_rates = defaultdict(lambda: defaultdict(float))
        speeds: dict[int, float] = {}

        by_node: dict[str, list[SimProcess]] = defaultdict(list)
        for proc in running:
            by_node[proc.node].append(proc)

        miss_factor: dict[int, float] = {}
        with self.stats.timer("node"):
            for node_name, procs in by_node.items():
                pids = tuple(p.pid for p in procs)
                cached = self._node_cache.get(node_name)
                if (
                    cached is not None
                    and cached.pids == pids
                    and dirty is not None
                    and dirty.isdisjoint(pids)
                ):
                    # Same tenants, same segments: stage-1 is bit-identical.
                    self.stats.count("nodes_reused")
                    speeds.update(cached.speeds)
                    miss_factor.update(cached.miss_factor)
                    for pid, rates in cached.rates.items():
                        self._proc_rates[pid].update(rates)
                    continue
                self.stats.count("nodes_solved")
                node_speeds = self._solve_node(node_name, procs, miss_factor)
                speeds.update(node_speeds)
                self._node_cache[node_name] = _NodeSolve(
                    pids=pids,
                    speeds=dict(node_speeds),
                    rates={pid: dict(self._proc_rates[pid]) for pid in pids},
                    miss_factor={
                        pid: miss_factor[pid] for pid in pids if pid in miss_factor
                    },
                )
            for stale in [name for name in self._node_cache if name not in by_node]:
                del self._node_cache[stale]

        # Fault-induced compute degradation (node hang / transient
        # slowdown) scales the stage-1 outcome.  The node cache always
        # stores *pre-fault* values, so the factor is applied uniformly on
        # every resolve — cached and fresh nodes alike — and clears the
        # moment the fault reverts (the injector forces a full resolve).
        faults = self.cluster.faults
        if faults is not None and faults.active:
            for proc in running:
                factor = faults.speed_factor(proc.node)
                if factor < 1.0:
                    speeds[proc.pid] *= factor
                    rates = self._proc_rates[proc.pid]
                    for key in rates:
                        rates[key] *= factor

        with self.stats.timer("network"):
            self._solve_network(running, speeds)
        with self.stats.timer("storage"):
            self._solve_storage(running, speeds)
        self._record_rates(running, speeds, miss_factor)
        return speeds

    def accrue(self, running: Sequence[SimProcess], t0: float, t1: float) -> None:
        dt = t1 - t0
        for proc in running:
            rates = self._proc_rates.get(proc.pid)
            if not rates:
                continue
            node = self.cluster.node(proc.node)
            for key, rate in rates.items():
                amount = rate * dt
                proc.add_counter(key, amount)
                node.add_counter(_NODE_COUNTER[key], amount)
            node.add_counter(
                f"cpu_core{proc.core}_seconds",
                rates.get("cpu_user_seconds", 0.0) * dt,
            )
        for node_name, rates in self._remote_rates.items():
            node = self.cluster.node(node_name)
            for key, rate in rates.items():
                node.add_counter(key, rate * dt)

    def on_process_end(self, proc: SimProcess) -> None:
        self.cluster.node(proc.node).memory.free_all(proc.pid)

    def accrue_background(self, dt: float) -> None:
        """OS noise accounting; called by the cluster's sys sampler."""
        for node in self.cluster.nodes.values():
            node.add_counter(
                "cpu_sys_seconds", node.spec.os_noise_util * node.logical_cores * dt
            )

    # -- stage 1: per-node --------------------------------------------------

    def _solve_node(
        self,
        node_name: str,
        procs: list[SimProcess],
        miss_factor: dict[int, float],
    ) -> dict[int, float]:
        node = self.cluster.node(node_name)
        spec = node.spec
        sizes = {lvl: spec.cache.size(lvl) for lvl in CACHE_LEVELS}

        footprints = {
            p.pid: inclusive_footprints(p.current.cache_footprint, sizes)
            for p in procs
            if p.current is not None
        }
        evictions: dict[int, dict[str, float]] = {
            p.pid: dict.fromkeys(CACHE_LEVELS, 0.0) for p in procs
        }

        # Private levels (L1, L2): contested among hyperthread siblings.
        for level in ("L1", "L2"):
            groups: dict[int, list[SimProcess]] = defaultdict(list)
            for p in procs:
                groups[spec.physical_core_of(p.core)].append(p)
            for tenants in groups.values():
                res = solve_occupancy(
                    sizes[level],
                    [
                        CacheDemand(
                            p.pid, footprints[p.pid][level], p.current.cache_intensity
                        )
                        for p in tenants
                    ],
                    sharpness=self.cache_sharpness,
                )
                for p in tenants:
                    evictions[p.pid][level] = res[p.pid].eviction

        # Shared level (L3): contested socket-wide.
        socket_groups: dict[int, list[SimProcess]] = defaultdict(list)
        for p in procs:
            socket_groups[spec.socket_of(p.core)].append(p)
        for tenants in socket_groups.values():
            res = solve_occupancy(
                sizes["L3"],
                [
                    CacheDemand(
                        p.pid, footprints[p.pid]["L3"], p.current.cache_intensity
                    )
                    for p in tenants
                ],
                sharpness=self.cache_sharpness,
            )
            for p in tenants:
                evictions[p.pid]["L3"] = res[p.pid].eviction

        for p in procs:
            miss_factor[p.pid] = cascade_miss_factor(
                evictions[p.pid], spec.cache_miss_cascade
            )

        # CPU: processor sharing per logical core, SMT capacity coupling.
        core_demand: dict[int, float] = defaultdict(float)
        for p in procs:
            core_demand[p.core] += p.current.cpu
        compute_speed: dict[int, float] = {}
        cpu_grant: dict[int, float] = {}
        for p in procs:
            seg = p.current
            sibling = spec.sibling_of(p.core)
            sibling_util = (
                min(1.0, core_demand.get(sibling, 0.0)) if sibling is not None else 0.0
            )
            capacity = 1.0 - (1.0 - spec.smt_throughput / 2.0) * sibling_util
            total = core_demand[p.core]
            if seg.cpu > 0:
                # Time share is what /proc/stat sees (a busy hyperthread is
                # 100% "utilised"); the SMT capacity factor degrades the
                # *throughput* extracted during that time.
                time_share = seg.cpu * min(1.0, 1.0 / total)
                cpu_ratio = (time_share / seg.cpu) * capacity
            else:
                time_share, cpu_ratio = 0.0, 1.0
            cpu_grant[p.pid] = time_share
            cpi = 1.0 + seg.miss_cpi_penalty * miss_factor[p.pid]
            compute_speed[p.pid] = cpu_ratio / cpi

        # Memory bandwidth per socket, then the roofline composition:
        # a segment's nominal time splits into an overlapped compute part
        # (1 - phi) and a memory part (phi), where phi is how close the
        # segment's demand sits to the single-core bandwidth limit.  The
        # achieved speed is the roofline max of both parts — so a fully
        # memory-bound STREAM does not care about losing CPU share, and a
        # compute-bound kernel does not care about bandwidth loss.
        mem_ratio: dict[int, float] = {}
        phi0: dict[int, float] = {}  # memory-time fraction at base traffic
        phi: dict[int, float] = {}  # inflated by eviction refetches
        for tenants in socket_groups.values():
            wants = []
            for p in tenants:
                seg = p.current
                want = seg.mem_bw + seg.mem_bw_extra * miss_factor[p.pid]
                wants.append(min(want, spec.core_mem_bw))  # single-core limit
            grants = solve_bandwidth(
                spec.mem_bw_per_socket,
                wants,
                alpha=spec.bw_latency_alpha,
                share_fn=self.share_fn,
            )
            for p, want, grant in zip(tenants, wants, grants):
                mem_ratio[p.pid] = 1.0 if want <= 0 else min(1.0, grant / want)
                phi[p.pid] = want / spec.core_mem_bw
                phi0[p.pid] = (
                    min(p.current.mem_bw, spec.core_mem_bw) / spec.core_mem_bw
                )

        speeds: dict[int, float] = {}
        for p in procs:
            f0 = phi0[p.pid]
            f = phi[p.pid]
            # Roofline with eviction-inflated memory traffic: the nominal
            # iteration overlaps a compute part (1 - f0) and a memory part
            # (f0); contention stretches compute by 1/compute_speed and
            # memory to f / mem_ratio (extra refetch bytes AND reduced
            # bandwidth).  The achieved speed is baseline over the new max.
            baseline = max(1.0 - f0, f0)
            slowdown = (
                max((1.0 - f0) / compute_speed[p.pid], f / mem_ratio[p.pid]) / baseline
            )
            speeds[p.pid] = 1.0 / slowdown
            self._proc_rates[p.pid]["cpu_user_seconds"] = cpu_grant[p.pid]
            self._proc_rates[p.pid]["mem_bytes"] = (
                f * spec.core_mem_bw * speeds[p.pid]
            )
        return speeds

    # -- stage 2: network -----------------------------------------------------

    def _apply_stage(self, stage: _StageSolve, speeds: dict[int, float]) -> None:
        """Fold a (fresh or cached) stage outcome into speeds and rates."""
        for pid, ratio in stage.ratios.items():
            speeds[pid] *= ratio
        for pid, rates in stage.rates.items():
            self._proc_rates[pid].update(rates)
        for node_name, rates in stage.remote.items():
            remote = self._remote_rates[node_name]
            for counter, rate in rates.items():
                remote[counter] += rate

    def _solve_network(
        self, running: Sequence[SimProcess], speeds: dict[int, float]
    ) -> None:
        if self.flow_solver is None:
            return
        requests: list[FlowRequest] = []
        owners: list[tuple[SimProcess, float]] = []  # (proc, demand)
        key = 0
        for proc in running:
            seg = proc.current
            if seg is None:
                continue
            for flow in seg.flows:
                demand = flow.rate * speeds[proc.pid]
                requests.append(
                    FlowRequest(key=key, src=proc.node, dst=flow.dst, demand=demand)
                )
                owners.append((proc, demand))
                key += 1
        if not requests:
            self._net_cache = None
            return
        # Fault-induced link degradation scales the *granted* ratio, not
        # the demand: scaling demand to zero would hit the ``demand <= 0``
        # branch below and wrongly grant full speed.  The factors join the
        # signature so a link_down apply/revert invalidates the stage memo.
        faults = self.cluster.faults
        if faults is not None and faults.active:
            nic_factors = [
                faults.nic_factor(req.src) * faults.nic_factor(req.dst)
                for req in requests
            ]
        else:
            nic_factors = [1.0] * len(requests)
        signature = tuple(
            (proc.pid, req.src, req.dst, req.demand, nic)
            for req, (proc, _), nic in zip(requests, owners, nic_factors)
        )
        if self._net_cache is not None and self._net_cache.signature == signature:
            # Identical flow demand set: the previous allocation stands.
            self.stats.count("network_stage_skips")
            self._apply_stage(self._net_cache, speeds)
            return
        self.stats.count("network_stage_solves")
        result = self.flow_solver.solve(requests)
        worst_ratio: dict[int, float] = {}
        tx_rates: dict[int, dict[str, float]] = {}
        remote: dict[str, dict[str, float]] = {}
        for request, (proc, demand), nic in zip(requests, owners, nic_factors):
            grant = result.grants[request.key] * nic
            ratio = nic if demand <= 0 else min(1.0, grant / demand)
            worst_ratio[proc.pid] = min(worst_ratio.get(proc.pid, 1.0), ratio)
            rates = tx_rates.setdefault(proc.pid, {"nic_tx_bytes": 0.0})
            rates["nic_tx_bytes"] += grant
            remote.setdefault(request.dst, {"nic_rx_bytes": 0.0})[
                "nic_rx_bytes"
            ] += grant
        # tx accounting already reflects granted (not demanded) rates
        self._net_cache = _StageSolve(
            signature=signature, ratios=worst_ratio, rates=tx_rates, remote=remote
        )
        self._apply_stage(self._net_cache, speeds)

    # -- stage 3: storage -----------------------------------------------------

    def _solve_storage(
        self, running: Sequence[SimProcess], speeds: dict[int, float]
    ) -> None:
        by_fs: dict[str, list[tuple[SimProcess, IODemand]]] = defaultdict(list)
        for proc in running:
            seg = proc.current
            if seg is not None and seg.io is not None:
                io = seg.io
                s = speeds[proc.pid]
                scaled = type(io)(
                    fs=io.fs,
                    write_bw=io.write_bw * s,
                    read_bw=io.read_bw * s,
                    meta_ops=io.meta_ops * s,
                )
                by_fs[io.fs].append((proc, scaled))
        obs = self.cluster.sim.obs
        if obs is not None:
            # Maintain one "busy" span per filesystem covering the stretch
            # of simulated time during which any I/O demand exists.
            for fs_name in self.cluster.filesystems:
                obs.window(
                    ("io", fs_name),
                    "storage",
                    f"busy:{fs_name}",
                    ("storage", fs_name),
                    active=fs_name in by_fs,
                )
        if not by_fs:
            self._io_cache = None
            return
        # Filesystem health (failed OSTs, metadata brownout) joins the
        # signature so degradation events invalidate the stage memo even
        # when the demand set itself is unchanged.
        signature = (
            tuple(
                (p.pid, p.node, fs_name, io.write_bw, io.read_bw, io.meta_ops)
                for fs_name, pairs in by_fs.items()
                for p, io in pairs
            ),
            tuple(
                (fs_name, self.cluster.filesystem(fs_name).health_revision)
                for fs_name in sorted(by_fs)
            ),
        )
        if self._io_cache is not None and self._io_cache.signature == signature:
            # Identical scaled IO demand set: previous grants stand.
            self.stats.count("storage_stage_skips")
            self._apply_stage(self._io_cache, speeds)
            return
        self.stats.count("storage_stage_solves")
        ratios: dict[int, float] = {}
        io_rates: dict[int, dict[str, float]] = {}
        for fs_name, pairs in by_fs.items():
            fs = self.cluster.filesystem(fs_name)
            grants = fs.solve([(p.pid, p.node, io) for p, io in pairs])
            for p, _ in pairs:
                grant = grants[p.pid]
                ratios[p.pid] = min(1.0, grant.ratio)
                io_rates[p.pid] = {
                    "io_write_bytes": grant.write_bw,
                    "io_read_bytes": grant.read_bw,
                    "io_meta_ops": grant.meta_ops,
                }
        self._io_cache = _StageSolve(signature=signature, ratios=ratios, rates=io_rates)
        self._apply_stage(self._io_cache, speeds)

    # -- finalize --------------------------------------------------------------

    def _record_rates(
        self,
        running: Sequence[SimProcess],
        speeds: dict[int, float],
        miss_factor: dict[int, float],
    ) -> None:
        for proc in running:
            seg = proc.current
            if seg is None:
                continue
            rates = self._proc_rates[proc.pid]
            speed = speeds.get(proc.pid, 0.0)
            amp = self.cluster.node(proc.node).spec.miss_amplification
            ips = seg.ips * speed
            mpki = amp * (
                seg.mpki_base + seg.mpki_extra * miss_factor.get(proc.pid, 0.0)
            )
            rates["instructions"] = ips
            rates["l3_misses"] = mpki * ips / 1000.0
            # L2 misses track whichever is larger: the cascade from L3
            # misses, or the demand-miss stream feeding the measured
            # memory traffic (one miss per ~4 cache lines after
            # prefetching) — the latter is what makes L2_RQSTS:MISS the
            # paper's memory-intensiveness indicator (Table 2).
            rates["l2_misses"] = max(
                self.L2_MISS_FACTOR * mpki * ips / 1000.0,
                rates.get("mem_bytes", 0.0) / 256.0,
            )


#: mapping from per-process counter names to node counter names
_NODE_COUNTER = {
    "cpu_user_seconds": "cpu_user_seconds",
    "mem_bytes": "mem_bytes",
    "instructions": "instructions",
    "l2_misses": "l2_misses",
    "l3_misses": "l3_misses",
    "nic_tx_bytes": "nic_tx_bytes",
    "io_write_bytes": "io_write_bytes",
    "io_read_bytes": "io_read_bytes",
    "io_meta_ops": "io_meta_ops",
}

#: canonical column order of the model-owned per-process counter keys —
#: disjoint from app-written keys (``cpu_seconds``, ``app_iterations``,
#: ``charm_compute_seconds``), so the array backend can flush its columns
#: by assignment without clobbering anything the app wrote directly
_RATE_KEYS = tuple(_NODE_COUNTER)
(_CPU, _MEM, _INSTR, _L2, _L3, _NIC, _IOW, _IOR, _IOM) = range(len(_RATE_KEYS))


@dataclass
class _ArrayNodeSolve:
    """Array-backend stage-1 cache marker.

    The values live in the model's persistent stage-1 arrays, so only the
    tenancy (which pids, in which order) needs remembering to decide
    whether those rows are still valid."""

    pids: tuple[int, ...]


@dataclass
class _ArrayStage:
    """Cached network-stage outcome in array form (rows into the model)."""

    signature: tuple
    rows: np.ndarray
    ratios: np.ndarray
    tx: np.ndarray
    remote: dict[str, float]


class _RunGroup:
    """Structures derived from one running set, reused while it is stable.

    The engine resolves thousands of times per simulated run against the
    same ordered process list; everything here is a pure function of that
    list, so rebuilding it per resolve is pure overhead.  ``sel`` is a
    slice when the rows happen to be contiguous (the common case — rows
    are handed out in spawn order), letting the per-resolve array ops use
    basic indexing instead of fancy indexing."""

    __slots__ = (
        "pids",
        "rows",
        "rows_list",
        "sel",
        "by_node",
        "node_pids",
        "node_rows",
        "pid_index",
        "resolved",
        "node_cells",
        "core_cells",
    )

    def __init__(
        self,
        model: "ArrayRateModel",
        pids: tuple[int, ...],
        rows_list: list[int],
        by_node: dict[str, list[SimProcess]],
    ) -> None:
        self.pids = pids
        self.rows_list = rows_list
        rows = np.asarray(rows_list, dtype=np.int64)
        self.rows = rows
        n = len(rows_list)
        if n and rows_list == list(range(rows_list[0], rows_list[0] + n)):
            self.sel: slice | np.ndarray = slice(rows_list[0], rows_list[0] + n)
        else:
            self.sel = rows
        self.by_node = by_node
        pid_row = model._pid_row
        intern = model._node_rows_intern
        node_pids: dict[str, tuple[int, ...]] = {}
        node_rows: dict[str, tuple] = {}
        for name, procs in by_node.items():
            pids_t = tuple(p.pid for p in procs)
            node_pids[name] = pids_t
            quad = intern.get((name, pids_t))
            if quad is None:
                rows_py = [pid_row[p.pid] for p in procs]
                quad = (
                    np.asarray(rows_py, dtype=np.int64),
                    rows_py,
                    tuple(p.core for p in procs),
                    model.cluster.node(name).spec,
                )
                intern[(name, pids_t)] = quad
                if len(intern) > 4 * model.GROUP_CACHE_SIZE:
                    del intern[next(iter(intern))]
            node_rows[name] = quad
        self.node_pids = node_pids
        self.node_rows = node_rows
        self.pid_index = {pid: i for i, pid in enumerate(pids)}
        self.resolved = frozenset(pids)
        self.node_cells = model._row_node[rows]
        self.core_cells = model._row_corecell[rows]


class ArrayRateModel(ClusterRateModel):
    """Array-backed rate model: the engine's ``backend="array"`` hot path.

    Produces **byte-identical** simulations to :class:`ClusterRateModel`
    (the differential oracle in :mod:`repro.check` pins this across the
    fuzz corpus) while replacing the per-event Python dict traffic with
    flat numpy state:

    * per-process speeds and the nine model-owned counter *rates* live in
      contiguous arrays indexed by a pid→row slot table; a resolve writes
      rows, not dicts;
    * per-process and per-node counter *totals* live in matching arrays;
      ``accrue`` is a handful of vectorized adds (``np.add.at`` applies
      per-cell additions in running order, so every float lands exactly
      as the scalar loop's would);
    * counter dictionaries become a *view* refreshed by assignment at the
      points where readers look: the monitoring tick
      (:meth:`accrue_background` runs just before the sampler reads),
      process end, and end of :meth:`~repro.sim.engine.Simulator.run`
      (:meth:`sync_counters`);
    * stage 1 resolves a dirty node's tenants in **one vectorized pass**
      (:meth:`_solve_node_vectorized`): cache totals, SMT-coupled CPU
      sharing, per-socket bandwidth degradation, and the roofline
      composition are all elementwise/grouped array ops that reproduce
      the scalar loop bit-for-bit; a content-addressed memo in front of
      it (:meth:`_solve_node_memo`) reuses whole configurations — a
      node's solve is a pure function of (spec, per-tenant ``(core,
      segment demand)``), and synchronized ranks cycle a handful of
      identical configurations;
    * the network stage's memo signature is an array fingerprint — the
      structural (pid, src, dst) tuple plus ``demands.tobytes()`` — used
      three deep: an unchanged signature reuses the previous allocation
      outright, a recurring one replays a cached stage from
      ``_net_memo``, and only novel signatures reach
      :meth:`FlowSolver.solve` (whose own memo is keyed the same way).

    Exactness rules used throughout (see docs/PERFORMANCE.md): elementwise
    numpy ops are IEEE-identical to the scalar ops they replace;
    ``np.add.at`` accumulates strictly in index order; adding ``0.0`` to a
    non-negative total is a bitwise no-op (which is why untouched rate
    cells can ride along in the vectorized add); reductions that would
    reassociate floating-point sums are never used on accumulated values.
    """

    #: distinct (spec, tenancy) stage-1 configurations kept.  Jittered
    #: ranks desynchronize, so distinct tenancy configurations number in
    #: the thousands on long contended runs; entries are four small
    #: arrays, so a deep memo is cheap.
    STAGE1_MEMO_SIZE = 4096
    #: distinct network-stage signatures kept
    NET_MEMO_SIZE = 256
    #: distinct running-set configurations whose grouping is kept
    GROUP_CACHE_SIZE = 256

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        cluster = self.cluster
        nodes = list(cluster.nodes.values())
        self._node_index = {node.name: i for i, node in enumerate(nodes)}
        self._node_list = nodes
        self._node_sizes = [
            {lvl: node.spec.cache.size(lvl) for lvl in CACHE_LEVELS}
            for node in nodes
        ]
        first = nodes[0]
        node_keys = [k for k in first.counters if not k.startswith("cpu_core")]
        self._node_cols = {k: j for j, k in enumerate(node_keys)}
        self._node_key_list = node_keys
        self._ncores = first.logical_cores
        self._core_keys = [f"cpu_core{i}_seconds" for i in range(self._ncores)]
        #: per-node counter totals (matching the nodes' dicts column-wise)
        self._NC = np.array(
            [[node.counters[k] for k in node_keys] for node in nodes], dtype=float
        )
        self._NCcore = np.array(
            [[node.counters[k] for k in self._core_keys] for node in nodes],
            dtype=float,
        )
        self._key_node_col = [
            self._node_cols[_NODE_COUNTER[k]] for k in _RATE_KEYS
        ]
        self._key_node_col_arr = np.asarray(self._key_node_col, dtype=np.int64)
        self._sys_col = self._node_cols["cpu_sys_seconds"]
        self._rx_col = self._node_cols["nic_rx_bytes"]
        self._noise_base = np.array(
            [node.spec.os_noise_util * node.logical_cores for node in nodes],
            dtype=float,
        )
        #: sampler-flush snapshots: cells equal to these are already in
        #: the node dicts, so a flush only writes what changed
        self._NC_flushed = self._NC.copy()
        self._NCcore_flushed = self._NCcore.copy()
        # pid → row slot table plus row-indexed state; capacity doubles on
        # demand and rows are never recycled (pids are globally unique).
        self._pid_row: dict[int, int] = {}
        self._row_proc: list[SimProcess] = []
        self._seg_key_list: list[int | None] = []
        self._row_flows: list[tuple | None] = []
        self._nrows = 0
        self._alloc(64)
        #: stage-1 configuration memo (content-addressed, see class doc)
        self._stage1_cache: dict[tuple, tuple] = {}
        #: per-spec stacked cache-level geometry (see ``_evict_levels``)
        self._evict_geom: dict[int, tuple] = {}
        #: per-node tenant quadruples keyed by (node, ordered pid tuple);
        #: a node's tenant configuration is a pure function of that key
        #: (rows and core pinning are fixed per pid), and recurs across
        #: many distinct global running sets, so group (re)builds mostly
        #: assemble interned entries
        self._node_rows_intern: dict[tuple, tuple] = {}
        #: segment-key interning table: memo keys carry small ints instead
        #: of nested float tuples, so hashing them is integer work
        self._seg_intern: dict[tuple, int] = {}
        self._net_cache: _ArrayStage | None = None
        #: network-stage memo (signature → folded stage outcome)
        self._net_memo: dict[tuple, _ArrayStage] = {}
        # flow-structure cache: rebuilt only when the set of flow-bearing
        # rows (or any of their segments) changes
        self._flow_rows_key: tuple | None = None
        self._flow_rows_arr = np.zeros(0, dtype=np.int64)
        self._flow_rates_arr = np.zeros(0)
        self._flow_struct: tuple = ()
        self._flow_token = -1
        #: flow-structure interning table (structure tuple → token); the
        #: per-resolve network signature carries the token so hashing it
        #: does not re-walk the structure tuple
        self._struct_intern: dict[tuple, int] = {}
        self._flow_pairs: list[tuple[str, str]] = []
        self._flow_ones = np.zeros(0)
        self._flows_dirty = False
        self._remote: dict[str, float] = {}
        self._acc_rows = np.zeros(0, dtype=np.int64)
        self._acc_sel: slice | np.ndarray = self._acc_rows
        self._acc_node_cells = np.zeros(0, dtype=np.int64)
        self._acc_core_cells = np.zeros(0, dtype=np.int64)
        self._resolved_pids: frozenset[int] = frozenset()
        self._last_pids: Sequence[int] = []
        #: running-set grouping caches keyed by the ordered pid tuple —
        #: barrier phases make the running set oscillate between a few
        #: recurring configurations, so one entry per configuration
        #: (FIFO-bounded) turns the per-resolve grouping into one lookup
        self._group_cache: dict[tuple[int, ...], _RunGroup] = {}

    # -- slot management ----------------------------------------------------

    def _alloc(self, cap: int) -> None:
        nkeys = len(_RATE_KEYS)

        def grow(old, shape, dtype):
            out = np.zeros(shape, dtype=dtype)
            if old is not None:
                out[: old.shape[0]] = old
            return out

        self._row_node = grow(getattr(self, "_row_node", None), cap, np.int64)
        self._row_corecell = grow(getattr(self, "_row_corecell", None), cap, np.int64)
        # node-local topology of the row's core (stage-1 group indices)
        self._row_core = grow(getattr(self, "_row_core", None), cap, np.int64)
        self._row_phys = grow(getattr(self, "_row_phys", None), cap, np.int64)
        self._row_sib = grow(getattr(self, "_row_sib", None), cap, np.int64)
        self._row_sock = grow(getattr(self, "_row_sock", None), cap, np.int64)
        self._row_amp = grow(getattr(self, "_row_amp", None), cap, float)
        self._seg_present = grow(getattr(self, "_seg_present", None), cap, bool)
        self._seg_ips = grow(getattr(self, "_seg_ips", None), cap, float)
        self._seg_mpki_base = grow(getattr(self, "_seg_mpki_base", None), cap, float)
        self._seg_mpki_extra = grow(getattr(self, "_seg_mpki_extra", None), cap, float)
        # stage-1 demand vector of the row's current segment (refreshed
        # when the segment changes; footprints are inclusive-normalized)
        self._seg_cpu = grow(getattr(self, "_seg_cpu", None), cap, float)
        self._seg_int = grow(getattr(self, "_seg_int", None), cap, float)
        self._seg_mcp = grow(getattr(self, "_seg_mcp", None), cap, float)
        self._seg_bw = grow(getattr(self, "_seg_bw", None), cap, float)
        self._seg_bwx = grow(getattr(self, "_seg_bwx", None), cap, float)
        self._seg_fp1 = grow(getattr(self, "_seg_fp1", None), cap, float)
        self._seg_fp2 = grow(getattr(self, "_seg_fp2", None), cap, float)
        self._seg_fp3 = grow(getattr(self, "_seg_fp3", None), cap, float)
        # stage-2/3 membership of the row's current segment
        self._row_flow_mask = grow(getattr(self, "_row_flow_mask", None), cap, bool)
        self._row_io_mask = grow(getattr(self, "_row_io_mask", None), cap, bool)
        self._s1_speed = grow(getattr(self, "_s1_speed", None), cap, float)
        self._s1_cpu = grow(getattr(self, "_s1_cpu", None), cap, float)
        self._s1_mem = grow(getattr(self, "_s1_mem", None), cap, float)
        self._mf = grow(getattr(self, "_mf", None), cap, float)
        self._S = grow(getattr(self, "_S", None), cap, float)
        self._R = grow(getattr(self, "_R", None), (cap, nkeys), float)
        self._Tmask = grow(getattr(self, "_Tmask", None), (cap, nkeys), bool)
        self._C = grow(getattr(self, "_C", None), (cap, nkeys), float)
        self._Tc = grow(getattr(self, "_Tc", None), (cap, nkeys), bool)

    def _row_for(self, proc: SimProcess) -> int:
        row = self._pid_row.get(proc.pid)
        if row is not None:
            return row
        if self._nrows == self._S.shape[0]:
            self._alloc(2 * self._nrows)
        row = self._nrows
        self._nrows += 1
        self._pid_row[proc.pid] = row
        self._row_proc.append(proc)
        self._seg_key_list.append(None)
        self._row_flows.append(None)
        ni = self._node_index[proc.node]
        spec = self._node_list[ni].spec
        self._row_node[row] = ni
        self._row_corecell[row] = ni * self._ncores + proc.core
        self._row_core[row] = proc.core
        self._row_phys[row] = spec.physical_core_of(proc.core)
        sibling = spec.sibling_of(proc.core)
        self._row_sib[row] = -1 if sibling is None else sibling
        self._row_sock[row] = spec.socket_of(proc.core)
        self._row_amp[row] = spec.miss_amplification
        counters = proc.counters
        for col, key in enumerate(_RATE_KEYS):
            if key in counters:
                self._C[row, col] = counters[key]
                self._Tc[row, col] = True
        return row

    # -- resolve ------------------------------------------------------------

    def resolve_incremental(
        self,
        running: Sequence[SimProcess],
        now: float,
        dirty: frozenset[int] | None = None,
    ) -> dict[int, float]:
        if not self.incremental:
            dirty = None
        if dirty is None:
            # Full resolve: forget everything so no stale stage survives.
            # The stage-1 memo goes too — a forced full resolve signals
            # that model inputs may have changed out-of-band.
            self._node_cache.clear()
            self._net_cache = None
            self._io_cache = None
            self._stage1_cache.clear()
            self._net_memo.clear()
        self.stats.count("array_resolves")
        self._remote = {}

        pids = tuple(p.pid for p in running)
        group = self._group_cache.get(pids)
        if group is not None:
            # Known running set: rows, by-node grouping, and per-node pid
            # tuples are all unchanged — only refresh dirty segments (plus
            # any row whose segment is still unset, e.g. between phases).
            # Grouping is a pure function of the ordered pid list, and a
            # proc's node/core pinning is fixed for its lifetime, so a
            # configuration revived after a barrier phase is still exact.
            rows = group.rows
            rows_list = group.rows_list
            if dirty is None:
                for i, proc in enumerate(running):
                    self._refresh_segment(proc, rows_list[i])
            else:
                if dirty:
                    pid_index = group.pid_index
                    for pid in dirty:
                        i = pid_index.get(pid)
                        if i is not None:
                            self._refresh_segment(running[i], rows_list[i])
                present = self._seg_present[group.sel]
                if not present.all():
                    for i in np.nonzero(~present)[0].tolist():
                        if pids[i] not in dirty:
                            self._refresh_segment(running[i], rows_list[i])
        else:
            rows_list = []
            by_node: dict[str, list[SimProcess]] = {}
            for proc in running:
                row = self._row_for(proc)
                rows_list.append(row)
                procs = by_node.get(proc.node)
                if procs is None:
                    by_node[proc.node] = [proc]
                else:
                    procs.append(proc)
                if dirty is None or proc.pid in dirty or not self._seg_present[row]:
                    self._refresh_segment(proc, row)
            group = _RunGroup(self, pids, rows_list, by_node)
            self._group_cache[pids] = group
            if len(self._group_cache) > self.GROUP_CACHE_SIZE:
                del self._group_cache[next(iter(self._group_cache))]
            rows = group.rows
            # Nodes only lose all tenants when the running set changes, so
            # stale-entry cleanup belongs to the group rebuild.
            for stale in [
                name for name in self._node_cache if name not in by_node
            ]:
                del self._node_cache[stale]

        node_pids = group.node_pids
        node_rows = group.node_rows
        for node_name, procs in group.by_node.items():
            pids_t = node_pids[node_name]
            cached = self._node_cache.get(node_name)
            if (
                cached is not None
                and cached.pids == pids_t
                and dirty is not None
                and dirty.isdisjoint(pids_t)
            ):
                # Same tenants, same segments: the stage-1 rows are
                # still exact.
                self.stats.count("nodes_reused")
                continue
            self.stats.count("nodes_solved")
            self._solve_node_memo(node_rows[node_name])
            self._node_cache[node_name] = _ArrayNodeSolve(pids=pids_t)

        sel = group.sel
        if rows.size:
            self._R[sel] = 0.0
            self._Tmask[sel] = False
            self._S[sel] = self._s1_speed[sel]
            self._R[sel, _CPU] = self._s1_cpu[sel]
            self._R[sel, _MEM] = self._s1_mem[sel]
            self._Tmask[sel, _CPU] = True
            self._Tmask[sel, _MEM] = True

        # Fault-induced compute degradation: stage-1 rows always store
        # *pre-fault* values, so the factor is applied uniformly on every
        # resolve — cached and fresh rows alike (see ClusterRateModel).
        # At this point the only materialized rates are the stage-1 pair,
        # exactly the keys the scalar path scales.
        faults = self.cluster.faults
        if faults is not None and faults.active and rows.size:
            node_factor = np.ones(len(self._node_index))
            for name, i in self._node_index.items():
                node_factor[i] = faults.speed_factor(name)
            factor = node_factor[group.node_cells]
            degraded = factor < 1.0
            if degraded.any():
                drows = rows[degraded]
                f = factor[degraded]
                self._S[drows] *= f
                self._R[drows, _CPU] *= f
                self._R[drows, _MEM] *= f

        self._solve_network_array(rows[self._row_flow_mask[sel]].tolist())
        self._solve_storage_array(rows[self._row_io_mask[sel]])
        self._acc_rows = rows
        self._acc_sel = sel
        self._acc_node_cells = group.node_cells
        self._acc_core_cells = group.core_cells
        self._record_rates_array(rows)

        self._Tc[sel] |= self._Tmask[sel]
        self._resolved_pids = group.resolved
        self._last_pids = pids
        return dict(zip(pids, self._S[sel].tolist()))

    @property
    def last_rates(self) -> dict[int, dict[str, float]]:
        """Per-pid accounting rates from the last resolve, materialized
        on demand from the rate matrix (checker-facing view)."""
        out: dict[int, dict[str, float]] = {}
        for pid in self._last_pids:
            row = self._pid_row[pid]
            rates: dict[str, float] = {}
            for col, key in enumerate(_RATE_KEYS):
                if self._Tmask[row, col]:
                    rates[key] = float(self._R[row, col])
            out[pid] = rates
        return out

    def _refresh_segment(self, proc: SimProcess, row: int) -> None:
        """Mirror the row's current segment into the demand arrays."""
        seg = proc.current
        old_flows = self._row_flows[row]
        if seg is None:
            self._seg_present[row] = False
            self._row_flows[row] = None
            self._row_flow_mask[row] = False
            self._row_io_mask[row] = False
            if old_flows is not None:
                self._flows_dirty = True
            return
        self._seg_present[row] = True
        self._seg_ips[row] = seg.ips
        self._seg_mpki_base[row] = seg.mpki_base
        self._seg_mpki_extra[row] = seg.mpki_extra
        self._seg_cpu[row] = seg.cpu
        self._seg_int[row] = seg.cache_intensity
        self._seg_mcp[row] = seg.miss_cpi_penalty
        self._seg_bw[row] = seg.mem_bw
        self._seg_bwx[row] = seg.mem_bw_extra
        fp = inclusive_footprints(
            seg.cache_footprint, self._node_sizes[self._row_node[row]]
        )
        self._seg_fp1[row] = fp["L1"]
        self._seg_fp2[row] = fp["L2"]
        self._seg_fp3[row] = fp["L3"]
        seg_key = self._segment_key(seg)
        token = self._seg_intern.get(seg_key)
        if token is None:
            token = len(self._seg_intern)
            self._seg_intern[seg_key] = token
        self._seg_key_list[row] = token
        flows = seg.flows if seg.flows else None
        self._row_flows[row] = flows
        self._row_flow_mask[row] = flows is not None
        self._row_io_mask[row] = seg.io is not None
        if flows is not None or old_flows is not None:
            self._flows_dirty = True

    # -- stage 1 with a configuration memo ----------------------------------

    @staticmethod
    def _segment_key(seg) -> tuple:
        # Exactly the segment fields stage 1 reads; two segments agreeing
        # on these produce bit-identical node solves.
        return (
            seg.cpu,
            tuple(sorted(seg.cache_footprint.items())),
            seg.cache_intensity,
            seg.miss_cpi_penalty,
            seg.mem_bw,
            seg.mem_bw_extra,
        )

    def _solve_node_memo(self, node_rows: tuple) -> None:
        """Stage-1 solve via the content-addressed configuration memo.

        The solve is a pure function of the node's spec and the ordered
        per-tenant ``(core, segment demand)`` vector — pids only label the
        outputs — so identical configurations (synchronized ranks cycling
        compute/comm phases) are served from the memo bit-for-bit.  The
        memoized value is the vectorized solve's output quadruple
        ``(speed, miss_factor, cpu_rate, mem_rate)`` — one array each,
        aligned with the rows — scattered into the stage-1 arrays here.
        Segment demand enters the key as its interned token (see
        :meth:`_refresh_segment`), so key hashing is integer work.
        """
        rows, rows_py, cores, spec = node_rows
        seg_keys = self._seg_key_list
        key = (id(spec), cores, tuple(seg_keys[r] for r in rows_py))
        hit = self._stage1_cache.get(key)
        if hit is not None:
            self.stats.count("stage1_memo_hits")
        else:
            self.stats.count("stage1_memo_misses")
            hit = self._solve_node_vectorized(spec, rows)
            if len(self._stage1_cache) >= self.STAGE1_MEMO_SIZE:
                self._stage1_cache.pop(next(iter(self._stage1_cache)))
            self._stage1_cache[key] = hit
        speed, mf, cpu_rate, mem_rate = hit
        self._s1_speed[rows] = speed
        self._mf[rows] = mf
        self._s1_cpu[rows] = cpu_rate
        self._s1_mem[rows] = mem_rate

    def _evict_levels(
        self,
        spec,
        phys: np.ndarray,
        sock: np.ndarray,
        fp1: np.ndarray,
        fp2: np.ndarray,
        fp3: np.ndarray,
        inten: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-tenant eviction fractions for all three cache levels.

        The three per-level solves are independent (their cell groups are
        disjoint), so they stack into one cell space — L1 cells ``[0,
        P)``, L2 ``[P, 2P)``, L3 ``[2P, 2P+S)`` for ``P`` physical cores
        and ``S`` sockets — and resolve in a single add.at/compare pass.
        Group totals come from ``np.add.at`` (strictly sequential, and
        riding-along ``0.0`` footprints cannot perturb a non-negative
        running sum), so the fits/overflow decision lands on exactly the
        bits the scalar ``solve_occupancy`` would see.  Groups that fit —
        the overwhelmingly common case — are all-zero evictions by
        definition; each oversubscribed group falls back to the scalar
        weighted-fill solver on identical inputs, in ascending stacked
        cell order — exactly the old L1-then-L2-then-L3,
        ascending-cell-within-level order.
        """
        geom = self._evict_geom.get(id(spec))
        if geom is None:
            cache = spec.cache
            p, s = spec.physical_cores, spec.sockets
            caps = np.empty(2 * p + s)
            caps[:p] = cache.size("L1")
            caps[p : 2 * p] = cache.size("L2")
            caps[2 * p :] = cache.size("L3")
            geom = (p, caps)
            self._evict_geom[id(spec)] = geom
        p, caps = geom
        gid = np.concatenate((phys, phys + p, sock + 2 * p))
        fp = np.concatenate((fp1, fp2, fp3))
        tot = np.zeros(caps.size)
        np.add.at(tot, gid, fp)
        ev = np.zeros(gid.size)
        over = tot[gid] > caps[gid]
        if over.any():
            inten3 = np.concatenate((inten, inten, inten))
            for cell in sorted(set(gid[over].tolist())):
                idx = np.nonzero(gid == cell)[0]
                res = solve_occupancy(
                    float(caps[cell]),
                    [
                        CacheDemand(int(i), float(fp[i]), float(inten3[i]))
                        for i in idx
                    ],
                    sharpness=self.cache_sharpness,
                )
                for i in idx.tolist():
                    ev[i] = res[i].eviction
        n = phys.size
        return ev[:n], ev[n : 2 * n], ev[2 * n :]

    def _solve_node_vectorized(self, spec, rows: np.ndarray) -> tuple:
        """One node's stage-1 solve as a single vectorized pass.

        Replays :meth:`ClusterRateModel._solve_node` with array ops whose
        float sequence is identical to the scalar loop's (elementwise ops
        are IEEE-identical, group sums use ``np.add.at`` in tenant order,
        branchy scalar code becomes ``np.where`` with masked-safe
        denominators), so the outputs match the reference bit-for-bit —
        the property the array-backend oracle pins.
        """
        fp1 = self._seg_fp1[rows]
        fp2 = self._seg_fp2[rows]
        fp3 = self._seg_fp3[rows]
        inten = self._seg_int[rows]
        core = self._row_core[rows]
        phys = self._row_phys[rows]
        sib = self._row_sib[rows]
        sock = self._row_sock[rows]

        # Cache occupancy: L1/L2 contested per physical core, L3 per
        # socket, all three levels solved in one stacked pass.
        ev1, ev2, ev3 = self._evict_levels(spec, phys, sock, fp1, fp2, fp3, inten)

        # cascade_miss_factor, vectorized: the dominant contribution counts
        # fully, the other two at 30%.  IEEE addition commutes bitwise, so
        # summing the two non-dominant terms in either order matches the
        # scalar sorted()-based reduction exactly.
        c1, c2, c3 = spec.cache_miss_cascade
        ca = c1 * ev1
        cb = c2 * ev2
        cc = c3 * ev3
        bc = np.maximum(cb, cc)
        hi = np.maximum(ca, bc)
        others = np.where(
            ca >= bc, cb + cc, np.where(cb >= np.maximum(ca, cc), ca + cc, ca + cb)
        )
        mf = np.minimum(1.0, hi + 0.3 * others)

        # CPU: processor sharing per logical core, SMT capacity coupling.
        cpu = self._seg_cpu[rows]
        cd = np.zeros(spec.logical_cores)
        np.add.at(cd, core, cpu)
        has_sib = sib >= 0
        sib_util = np.where(
            has_sib, np.minimum(1.0, cd[np.where(has_sib, sib, 0)]), 0.0
        )
        smt_capacity = 1.0 - (1.0 - spec.smt_throughput / 2.0) * sib_util
        total = cd[core]
        pos = cpu > 0.0
        time_share = np.where(
            pos, cpu * np.minimum(1.0, 1.0 / np.where(pos, total, 1.0)), 0.0
        )
        cpu_ratio = np.where(
            pos, (time_share / np.where(pos, cpu, 1.0)) * smt_capacity, 1.0
        )
        cpi = 1.0 + self._seg_mcp[rows] * mf
        compute_speed = cpu_ratio / cpi

        # Memory bandwidth per socket: latency degradation elementwise,
        # then the sharing discipline per socket group.  The max-min fast
        # path is inlined on the same pairwise total the solver would
        # compute; any other share_fn (ablations) gets the generic call.
        corebw = spec.core_mem_bw
        sockbw = spec.mem_bw_per_socket
        alpha = spec.bw_latency_alpha
        want = np.minimum(self._seg_bw[rows] + self._seg_bwx[rows] * mf, corebw)
        totw = np.zeros(spec.sockets)
        np.add.at(totw, sock, want)
        other_load = np.maximum(0.0, totw[sock] - want) / sockbw
        degraded = want / (1.0 + alpha * other_load)
        grants = np.empty(rows.size)
        inline_maxmin = self.share_fn is max_min_fair_share
        for s in sorted(set(sock.tolist())):
            idx = np.nonzero(sock == s)[0]
            dem = degraded[idx]
            if inline_maxmin:
                grants[idx] = (
                    dem if float(dem.sum()) <= sockbw else waterfill(sockbw, dem)
                )
            else:
                grants[idx] = self.share_fn(sockbw, dem)
        wpos = want > 0.0
        mem_ratio = np.where(
            wpos, np.minimum(1.0, grants / np.where(wpos, want, 1.0)), 1.0
        )
        phi = want / corebw
        phi0 = np.minimum(self._seg_bw[rows], corebw) / corebw

        # Roofline composition (see the scalar loop for the rationale).
        baseline = np.maximum(1.0 - phi0, phi0)
        slowdown = (
            np.maximum((1.0 - phi0) / compute_speed, phi / mem_ratio) / baseline
        )
        speed = 1.0 / slowdown
        mem_rate = phi * corebw * speed
        return speed, mf, time_share, mem_rate

    # -- stage 2: network ----------------------------------------------------

    def _solve_network_array(self, flow_rows: list[int]) -> None:
        if self.flow_solver is None:
            return
        if not flow_rows:
            self._net_cache = None
            return
        # Rebuild the flow-structure arrays only when the set of
        # flow-bearing rows changed or one of their segments refreshed;
        # between changes a resolve just rescales cached per-flow rates.
        key = tuple(flow_rows)
        if self._flows_dirty or key != self._flow_rows_key:
            rows_l: list[int] = []
            rates: list[float] = []
            struct: list[tuple] = []
            pairs: list[tuple[str, str]] = []
            for row in flow_rows:
                proc = self._row_proc[row]
                for flow in self._row_flows[row]:
                    rows_l.append(row)
                    rates.append(flow.rate)
                    struct.append((proc.pid, proc.node, flow.dst))
                    pairs.append((proc.node, flow.dst))
            self._flow_rows_key = key
            self._flow_rows_arr = np.asarray(rows_l, dtype=np.int64)
            self._flow_rates_arr = np.asarray(rates)
            struct_t = tuple(struct)
            self._flow_struct = struct_t
            token = self._struct_intern.get(struct_t)
            if token is None:
                token = len(self._struct_intern)
                self._struct_intern[struct_t] = token
            self._flow_token = token
            self._flow_pairs = pairs
            self._flow_ones = np.ones(len(rows_l))
            self._flows_dirty = False
        demands = self._flow_rates_arr * self._S[self._flow_rows_arr]
        faults = self.cluster.faults
        if faults is not None and faults.active:
            nic = np.asarray(
                [
                    faults.nic_factor(src) * faults.nic_factor(dst)
                    for src, dst in self._flow_pairs
                ]
            )
        else:
            nic = self._flow_ones
        # Array fingerprint: interned structure token + raw demand/nic
        # bytes (bytes objects cache their hash, so repeat signatures cost
        # one int hash plus two cached-byte hashes).  The same key is
        # handed to the flow solver so its memo (PR 2) is keyed on the
        # fingerprint rather than a per-flow float tuple.
        signature = (self._flow_token, nic.tobytes(), demands.tobytes())
        cache = self._net_cache
        if cache is not None and cache.signature == signature:
            self.stats.count("network_stage_skips")
            self._apply_net_stage(cache)
            return
        memo = self._net_memo if self.flow_solver.memoize else None
        stage = memo.get(signature) if memo is not None else None
        if stage is not None:
            self.stats.count("network_memo_hits")
        else:
            self.stats.count("network_stage_solves")
            requests = [
                FlowRequest(key=k, src=src, dst=dst, demand=float(demand))
                for k, ((pid, src, dst), demand) in enumerate(
                    zip(self._flow_struct, demands)
                )
            ]
            result = self.flow_solver.solve(requests, signature=signature)
            worst: dict[int, float] = {}
            tx: dict[int, float] = {}
            remote: dict[str, float] = {}
            nic_list = nic.tolist()
            rows_list = self._flow_rows_arr.tolist()
            for request, row, nic_k in zip(requests, rows_list, nic_list):
                grant = result.grants[request.key] * nic_k
                demand = request.demand
                ratio = nic_k if demand <= 0 else min(1.0, grant / demand)
                worst[row] = min(worst.get(row, 1.0), ratio)
                tx[row] = tx.get(row, 0.0) + grant
                remote[request.dst] = remote.get(request.dst, 0.0) + grant
            stage = _ArrayStage(
                signature=signature,
                rows=np.fromiter(worst, dtype=np.int64, count=len(worst)),
                ratios=np.fromiter(worst.values(), dtype=float, count=len(worst)),
                tx=np.fromiter(
                    (tx[row] for row in worst), dtype=float, count=len(worst)
                ),
                remote=remote,
            )
            if memo is not None:
                if len(memo) >= self.NET_MEMO_SIZE:
                    memo.pop(next(iter(memo)))
                memo[signature] = stage
        self._net_cache = stage
        self._apply_net_stage(stage)

    def _apply_net_stage(self, stage: _ArrayStage) -> None:
        self._S[stage.rows] *= stage.ratios
        self._R[stage.rows, _NIC] = stage.tx
        self._Tmask[stage.rows, _NIC] = True
        for dst, rate in stage.remote.items():
            self._remote[dst] = self._remote.get(dst, 0.0) + rate

    # -- stage 3: storage ----------------------------------------------------

    def _solve_storage_array(self, io_rows: np.ndarray) -> None:
        by_fs: dict[str, list[tuple[SimProcess, IODemand]]] = defaultdict(list)
        for row in io_rows.tolist():
            proc = self._row_proc[row]
            io = proc.current.io
            speed = float(self._S[row])
            scaled = type(io)(
                fs=io.fs,
                write_bw=io.write_bw * speed,
                read_bw=io.read_bw * speed,
                meta_ops=io.meta_ops * speed,
            )
            by_fs[io.fs].append((proc, scaled))
        obs = self.cluster.sim.obs
        if obs is not None:
            for fs_name in self.cluster.filesystems:
                obs.window(
                    ("io", fs_name),
                    "storage",
                    f"busy:{fs_name}",
                    ("storage", fs_name),
                    active=fs_name in by_fs,
                )
        if not by_fs:
            self._io_cache = None
            return
        signature = (
            tuple(
                (p.pid, p.node, fs_name, io.write_bw, io.read_bw, io.meta_ops)
                for fs_name, pairs in by_fs.items()
                for p, io in pairs
            ),
            tuple(
                (fs_name, self.cluster.filesystem(fs_name).health_revision)
                for fs_name in sorted(by_fs)
            ),
        )
        if self._io_cache is not None and self._io_cache.signature == signature:
            self.stats.count("storage_stage_skips")
            self._apply_io_stage(self._io_cache)
            return
        self.stats.count("storage_stage_solves")
        ratios: dict[int, float] = {}
        io_rates: dict[int, dict[str, float]] = {}
        for fs_name, pairs in by_fs.items():
            fs = self.cluster.filesystem(fs_name)
            grants = fs.solve([(p.pid, p.node, io) for p, io in pairs])
            for p, _ in pairs:
                grant = grants[p.pid]
                ratios[p.pid] = min(1.0, grant.ratio)
                io_rates[p.pid] = {
                    "io_write_bytes": grant.write_bw,
                    "io_read_bytes": grant.read_bw,
                    "io_meta_ops": grant.meta_ops,
                }
        self._io_cache = _StageSolve(signature=signature, ratios=ratios, rates=io_rates)
        self._apply_io_stage(self._io_cache)

    def _apply_io_stage(self, stage: _StageSolve) -> None:
        for pid, ratio in stage.ratios.items():
            self._S[self._pid_row[pid]] *= ratio
        for pid, rates in stage.rates.items():
            row = self._pid_row[pid]
            self._R[row, _IOW] = rates["io_write_bytes"]
            self._R[row, _IOR] = rates["io_read_bytes"]
            self._R[row, _IOM] = rates["io_meta_ops"]
            self._Tmask[row, _IOW] = True
            self._Tmask[row, _IOR] = True
            self._Tmask[row, _IOM] = True

    # -- finalize ------------------------------------------------------------

    def _record_rates_array(self, rows: np.ndarray) -> None:
        if not rows.size:
            return
        # The resolve that just ran leaves its selector in _acc_sel; when
        # every row has a live segment (the common case) the whole update
        # runs on that selector — a slice for contiguous groups.
        sel = self._acc_sel if rows is self._acc_rows else rows
        present = self._seg_present[sel]
        if present.all():
            rr: slice | np.ndarray = sel
        else:
            rr = rows[present]
            if not rr.size:
                return
        speed = self._S[rr]
        ips = self._seg_ips[rr] * speed
        mpki = self._row_amp[rr] * (
            self._seg_mpki_base[rr] + self._seg_mpki_extra[rr] * self._mf[rr]
        )
        self._R[rr, _INSTR] = ips
        self._R[rr, _L3] = mpki * ips / 1000.0
        self._R[rr, _L2] = np.maximum(
            self.L2_MISS_FACTOR * mpki * ips / 1000.0,
            self._R[rr, _MEM] / 256.0,
        )
        self._Tmask[rr, _INSTR] = True
        self._Tmask[rr, _L3] = True
        self._Tmask[rr, _L2] = True

    # -- accrual -------------------------------------------------------------

    def accrue(self, running: Sequence[SimProcess], t0: float, t1: float) -> None:
        dt = t1 - t0
        rows = self._acc_rows
        if rows.size != len(running) or (
            rows.size and self._pid_row.get(running[0].pid, -1) != rows[0]
        ):
            # Running set drifted from the last resolve (only possible for
            # un-resolved newcomers; any change marks the engine dirty and
            # forces a resolve before the next accrue).
            rows = np.asarray(
                [
                    self._pid_row[p.pid]
                    for p in running
                    if p.pid in self._resolved_pids
                ],
                dtype=np.int64,
            )
            sel: slice | np.ndarray = rows
            node_cells = self._row_node[rows]
            core_cells = self._row_corecell[rows]
        else:
            sel = self._acc_sel
            node_cells = self._acc_node_cells
            core_cells = self._acc_core_cells
        if rows.size:
            amounts = self._R[sel] * dt
            self._C[sel] += amounts
            # One fused scatter-add; C-order iteration is per-process,
            # per-key — and because _NODE_COUNTER maps rate keys to node
            # counters injectively, each target cell still receives its
            # contributions in process order, bit-identical to the scalar
            # per-process loop.
            np.add.at(
                self._NC,
                (node_cells[:, None], self._key_node_col_arr[None, :]),
                amounts,
            )
            np.add.at(
                self._NCcore.reshape(-1),
                core_cells,
                amounts[:, _CPU],
            )
        for node_name, rate in self._remote.items():
            self._NC[self._node_index[node_name], self._rx_col] += rate * dt

    def accrue_background(self, dt: float) -> None:
        """OS noise accounting plus the pre-sampler counter flush."""
        self._NC[:, self._sys_col] += self._noise_base * dt
        self._flush_nodes()

    # -- counter flushes -----------------------------------------------------

    def _flush_proc_row(self, proc: SimProcess, row: int) -> None:
        counters = proc.counters
        for col, key in enumerate(_RATE_KEYS):
            if self._Tc[row, col]:
                counters[key] = float(self._C[row, col])

    def _flush_nodes(self) -> None:
        """Write array-held node counters back to the node dicts.

        Cells equal to the last-flushed snapshot are already current in
        the dicts (this model is the only writer of these keys), so only
        the delta is materialized — the sampler tick touches a handful of
        cells, not every counter on every node.
        """
        nodes = self._node_list
        changed = np.nonzero(self._NC != self._NC_flushed)
        if changed[0].size:
            keys = self._node_key_list
            for i, j in zip(changed[0].tolist(), changed[1].tolist()):
                nodes[i].counters[keys[j]] = float(self._NC[i, j])
            np.copyto(self._NC_flushed, self._NC)
        changed = np.nonzero(self._NCcore != self._NCcore_flushed)
        if changed[0].size:
            keys = self._core_keys
            for i, c in zip(changed[0].tolist(), changed[1].tolist()):
                nodes[i].counters[keys[c]] = float(self._NCcore[i, c])
            np.copyto(self._NCcore_flushed, self._NCcore)

    def sync_counters(self) -> None:
        for proc, row in zip(self._row_proc, range(self._nrows)):
            self._flush_proc_row(proc, row)
        self._flush_nodes()

    def on_process_end(self, proc: SimProcess) -> None:
        row = self._pid_row.get(proc.pid)
        if row is not None:
            self._flush_proc_row(proc, row)
        super().on_process_end(proc)
