"""A simulated compute node."""

from __future__ import annotations

from repro.cluster.specs import MachineSpec
from repro.errors import ConfigError
from repro.memory.capacity import MemoryLedger
from repro.units import GB


class Node:
    """One compute node: cores, caches, memory ledger, and usage counters.

    The node does not model contention itself — the
    :class:`~repro.cluster.ratemodel.ClusterRateModel` does — but it owns
    the state the monitoring samplers read: the memory ledger and the
    cumulative usage counters (CPU seconds, instructions, cache misses,
    NIC traffic, ...) that the rate model integrates between events.
    """

    #: OS + system services memory footprint; Fig. 5 shows ~7 GB in use on
    #: an otherwise idle Voltrino node.
    OS_BASELINE_BYTES = 7 * GB

    def __init__(self, name: str, spec: MachineSpec) -> None:
        if not name:
            raise ConfigError("node name must be non-empty")
        self.name = name
        self.spec = spec
        self.memory = MemoryLedger(
            node=name, capacity=spec.mem_bytes, baseline=self.OS_BASELINE_BYTES
        )
        #: cumulative usage counters, integrated by the rate model;
        #: per-logical-core busy time lives under ``cpu_core{i}_seconds``
        self.counters: dict[str, float] = {
            "cpu_user_seconds": 0.0,
            "cpu_sys_seconds": 0.0,
            "instructions": 0.0,
            "l2_misses": 0.0,
            "l3_misses": 0.0,
            "mem_bytes": 0.0,
            "nic_tx_bytes": 0.0,
            "nic_rx_bytes": 0.0,
            "io_write_bytes": 0.0,
            "io_read_bytes": 0.0,
            "io_meta_ops": 0.0,
        }
        for core in range(spec.logical_cores):
            self.counters[f"cpu_core{core}_seconds"] = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} ({self.spec.name})>"

    def add_counter(self, key: str, amount: float) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + amount

    @property
    def logical_cores(self) -> int:
        return self.spec.logical_cores
