"""Simulated machines: specs, nodes, clusters, and the cluster rate model."""

from repro.cluster.specs import CacheSpec, MachineSpec
from repro.cluster.node import Node
from repro.cluster.cluster import Cluster

__all__ = ["CacheSpec", "Cluster", "MachineSpec", "Node"]
