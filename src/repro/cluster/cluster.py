"""The Cluster: nodes + network + filesystems + a wired simulator.

This is the main entry point of the substrate.  Typical use::

    from repro.cluster import Cluster, MachineSpec

    cluster = Cluster.voltrino(num_nodes=8)
    proc = cluster.spawn("work", body_fn, node="node0", core=0)
    cluster.sim.run(until=600.0)
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.cluster.node import Node
from repro.cluster.ratemodel import ArrayRateModel, ClusterRateModel
from repro.cluster.specs import MachineSpec
from repro.errors import ConfigError
from repro.memory.bandwidth import ShareFn
from repro.network.topology import NetworkTopology, aries_like, star
from repro.resources.fairshare import max_min_fair_share
from repro.sim.engine import Simulator, default_backend
from repro.sim.process import Body, SimProcess
from repro.storage.filesystem import SharedFilesystem

#: callbacks invoked with every newly constructed Cluster.  The trace
#: recorder uses this to attach to clusters built *inside* an experiment
#: runner (see :func:`repro.traces.recorder.recording_session`); empty in
#: normal operation, so construction pays one truthiness check.
_CLUSTER_OBSERVERS: list[Callable[["Cluster"], None]] = []


class Cluster:
    """A simulated HPC system.

    Parameters
    ----------
    num_nodes:
        Compute-node count; nodes are named ``node0..node{n-1}`` to match
        the network topology's endpoints.
    spec:
        Per-node hardware description.
    topology:
        A :class:`NetworkTopology`, or ``None`` for no network model
        (single-node studies).
    filesystems:
        Shared filesystems reachable from every node.
    share_fn / cache_sharpness / k_paths:
        Rate-model ablation knobs (see
        :class:`~repro.cluster.ratemodel.ClusterRateModel`).
    backend:
        ``"object"`` for the reference dict-based rate model and heap
        event queue, ``"array"`` for the numpy-backed hot path (same
        results, byte-for-byte — the ``repro check`` differential oracle
        pins this).  ``None`` reads ``REPRO_BACKEND`` (default object).
    """

    def __init__(
        self,
        num_nodes: int = 4,
        spec: MachineSpec | None = None,
        topology: NetworkTopology | None = None,
        filesystems: Iterable[SharedFilesystem] = (),
        share_fn: ShareFn = max_min_fair_share,
        cache_sharpness: float = 1.0,
        k_paths: int = 4,
        backend: str | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        self.spec = spec if spec is not None else MachineSpec.voltrino()
        self.nodes: dict[str, Node] = {
            f"node{i}": Node(f"node{i}", self.spec) for i in range(num_nodes)
        }
        if topology is not None:
            missing = set(self.nodes) - set(topology.compute_nodes)
            if missing:
                raise ConfigError(
                    f"topology lacks endpoints for nodes: {sorted(missing)}"
                )
        self.topology = topology
        self.filesystems: dict[str, SharedFilesystem] = {
            fs.name: fs for fs in filesystems
        }
        #: attached :class:`~repro.faults.state.FaultState`, or None.  Set
        #: by a FaultInjector; every consumer (rate model, scheduler) is
        #: guarded by a None-check, so an un-faulted simulation pays
        #: nothing beyond the attribute read.
        self.faults = None
        backend = default_backend() if backend is None else backend
        self.backend = backend
        model_cls = ArrayRateModel if backend == "array" else ClusterRateModel
        self.model = model_cls(
            self,
            share_fn=share_fn,
            cache_sharpness=cache_sharpness,
            k_paths=k_paths,
        )
        self.sim = Simulator(self.model, backend=backend)
        for node in self.nodes.values():
            node.memory.oom_killer = self._oom_kill
        if _CLUSTER_OBSERVERS:
            for observer in list(_CLUSTER_OBSERVERS):
                observer(self)

    # -- constructors -----------------------------------------------------

    @classmethod
    def voltrino(cls, num_nodes: int = 8, **kwargs) -> "Cluster":
        """Voltrino-like system: Haswell nodes on an Aries-like fabric."""
        spec = kwargs.pop("spec", MachineSpec.voltrino())
        topology = kwargs.pop(
            "topology", aries_like(num_nodes=num_nodes, nic_bw=spec.nic_bw)
        )
        return cls(num_nodes=num_nodes, spec=spec, topology=topology, **kwargs)

    @classmethod
    def chameleon(cls, num_nodes: int = 6, with_nfs: bool = True, **kwargs) -> "Cluster":
        """Chameleon-like system: star network, optional NFS appliance."""
        spec = kwargs.pop("spec", MachineSpec.chameleon())
        topology = kwargs.pop("topology", star(num_nodes=num_nodes, link_bw=spec.nic_bw))
        filesystems = kwargs.pop(
            "filesystems", (SharedFilesystem.nfs_appliance(),) if with_nfs else ()
        )
        return cls(
            num_nodes=num_nodes,
            spec=spec,
            topology=topology,
            filesystems=filesystems,
            **kwargs,
        )

    # -- lookup -------------------------------------------------------------

    def node(self, which: str | int) -> Node:
        """Fetch a node by name or index."""
        name = f"node{which}" if isinstance(which, int) else which
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigError(f"unknown node {which!r}") from None

    def filesystem(self, name: str) -> SharedFilesystem:
        try:
            return self.filesystems[name]
        except KeyError:
            raise ConfigError(f"unknown filesystem {name!r}") from None

    @property
    def node_names(self) -> list[str]:
        return sorted(self.nodes, key=lambda n: int(n.removeprefix("node")))

    # -- process management -----------------------------------------------------

    def spawn(
        self,
        name: str,
        body: Callable[[SimProcess], Body],
        node: str | int,
        core: int,
        at: float | None = None,
    ) -> SimProcess:
        """Create a process pinned to ``(node, core)`` and start it at ``at``."""
        node_obj = self.node(node)
        node_obj.spec._check_core(core)
        proc = SimProcess(name=name, body=body, node=node_obj.name, core=core)
        return self.sim.spawn(proc, at=at)

    def _oom_kill(self, pid: int) -> None:
        proc = self.sim.process(pid)
        self.sim.kill(proc, reason="oom-killed")
