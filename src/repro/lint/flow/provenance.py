"""Value-provenance rules: RL011 (rng) and RL012 (wall clock).

Both rules share one interprocedural taint analysis:

* **sources** — expressions whose value carries the hazard (a raw
  ``numpy.random.default_rng()`` generator; a ``time.perf_counter()``
  reading);
* **summaries** — a fixpoint over the call graph computes which project
  functions *return* tainted values and which *parameters* forward their
  argument into a sink (directly or through further calls);
* **sinks** — functions living in the configured sink packages
  (engine/solver/fault code for RL011, simulation code for RL012), plus
  rule-specific extras such as ``hashlib`` for fingerprinted state.

A finding fires where a tainted value is passed as an argument whose
position (transitively) reaches a sink — the line the report points at
is the call in the *caller*, i.e. the place the smuggling happens.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.lint.findings import Severity
from repro.lint.flow.base import FlowRule, register_flow_rule
from repro.lint.flow.callgraph import CallGraph, CallSite
from repro.lint.flow.index import FunctionInfo, ProjectIndex, _dotted

#: every parameter of a sink-package function is a sink position
ALL_PARAMS = "*"

_FIXPOINT_ROUNDS = 6


@dataclass
class TaintSpec:
    """What taints a value and where it must not go."""

    #: predicate over the *resolved external* name of a call (e.g.
    #: "numpy.random.default_rng") — True when the call creates taint
    is_source: Callable[[str], bool]
    #: terminal callee names whose return value is clean by decree
    blessed: Sequence[str]
    #: package components whose functions are sinks
    sink_packages: Sequence[str]
    #: qualified-name prefixes of external sinks (e.g. "hashlib.")
    external_sinks: Sequence[str] = ()


@dataclass
class _Summary:
    returns_taint: bool = False
    sink_params: set[str] = field(default_factory=set)  # names, or ALL_PARAMS


class TaintAnalysis:
    """Shared machinery; see module docstring."""

    def __init__(self, project: ProjectIndex, graph: CallGraph, spec: TaintSpec):
        self.project = project
        self.graph = graph
        self.spec = spec
        self.summaries: dict[str, _Summary] = {}
        self._compute_summaries()

    # -- summaries -----------------------------------------------------------

    def _summary(self, qualname: str) -> _Summary:
        if qualname not in self.summaries:
            summary = _Summary()
            fn = self.project.functions.get(qualname)
            if fn is not None and self._in_sink_package(fn):
                summary.sink_params.add(ALL_PARAMS)
            self.summaries[qualname] = summary
        return self.summaries[qualname]

    def _in_sink_package(self, fn: FunctionInfo) -> bool:
        info = self.project.modules.get(fn.module)
        return info is not None and info.in_packages(self.spec.sink_packages)

    def _compute_summaries(self) -> None:
        for qualname in self.project.functions:
            self._summary(qualname)
        for _ in range(_FIXPOINT_ROUNDS):
            changed = False
            for qualname, fn in self.project.functions.items():
                changed |= self._update_summary(qualname, fn)
            if not changed:
                return

    def _update_summary(self, qualname: str, fn: FunctionInfo) -> bool:
        summary = self._summary(qualname)
        tainted = self._tainted_vars(fn, seed_params=set(fn.param_names))
        changed = False
        # returns_taint: any return of a tainted-by-construction value
        # (parameters are NOT sources here, so seed with construction only).
        constructed = self._tainted_vars(fn, seed_params=set())
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if self._expr_tainted(fn, node.value, constructed):
                    if not summary.returns_taint:
                        summary.returns_taint = True
                        changed = True
        # sink_params: a parameter forwarded into a sink position.
        param_set = set(fn.param_names)
        for site in self.graph.sites.get(qualname, ()):
            for position, arg in self._iter_args(site):
                names = self._names_in(arg) & param_set & tainted
                if not names:
                    continue
                if self._position_is_sink(site, position):
                    new = names - summary.sink_params
                    if new:
                        summary.sink_params |= new
                        changed = True
        return changed

    # -- intra-function taint ------------------------------------------------

    def _tainted_vars(self, fn: FunctionInfo, seed_params: set[str]) -> set[str]:
        """Local names holding tainted values (two passes for loops)."""
        tainted = set(seed_params)
        for _ in range(2):
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    value = node.value
                    if value is None:
                        continue
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    names = [t.id for t in targets if isinstance(t, ast.Name)]
                    if not names:
                        continue
                    if self._expr_tainted(fn, value, tainted):
                        tainted.update(names)
                    else:
                        # re-binding a name to a clean value clears it only
                        # on the first pass; keep it simple and sticky.
                        pass
        return tainted - self._blessed_vars(fn)

    def _blessed_vars(self, fn: FunctionInfo) -> set[str]:
        """Names assigned from blessed factories are clean even if a
        broader expression around the factory looked like a source."""
        blessed: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                name = _dotted(node.value.func)
                if name is not None and name.split(".")[-1] in self.spec.blessed:
                    blessed.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
        return blessed

    def _expr_tainted(self, fn: FunctionInfo, node: ast.AST, tainted: set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Call):
            if self._is_source_call(fn, node):
                return True
            callee = self._resolved_callee(fn, node)
            if callee is not None and self._summary(callee).returns_taint:
                return True
            return False
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._expr_tainted(fn, e, tainted) for e in node.elts)
        if isinstance(node, ast.IfExp):
            return self._expr_tainted(fn, node.body, tainted) or self._expr_tainted(
                fn, node.orelse, tainted
            )
        if isinstance(node, ast.Attribute):
            # rng.bit_generator and friends stay tainted with their base
            return self._expr_tainted(fn, node.value, tainted)
        return False

    def _is_source_call(self, fn: FunctionInfo, node: ast.Call) -> bool:
        name = _dotted(node.func)
        if name is None:
            return False
        if name.split(".")[-1] in self.spec.blessed:
            return False
        info = self.project.modules.get(fn.module)
        resolved = self.project.resolve(info, name) if info is not None else name
        candidate = resolved if resolved is not None else name
        return self.spec.is_source(candidate)

    def _resolved_callee(self, fn: FunctionInfo, node: ast.Call) -> str | None:
        scope = self.graph.scope(fn.qualname)
        if scope is None:
            return None
        callee, _external = scope.resolve_call(node)
        return callee

    # -- sink matching -------------------------------------------------------

    def _iter_args(self, site: CallSite) -> list[tuple[str | int, ast.AST]]:
        args: list[tuple[str | int, ast.AST]] = []
        for i, arg in enumerate(site.node.args):
            if isinstance(arg, ast.Starred):
                continue
            args.append((i, arg))
        for kw in site.node.keywords:
            if kw.arg is not None:
                args.append((kw.arg, kw.value))
        return args

    def _position_is_sink(self, site: CallSite, position: str | int) -> bool:
        if site.callee is not None:
            summary = self._summary(site.callee)
            if ALL_PARAMS in summary.sink_params:
                return True
            fn = self.project.functions.get(site.callee)
            if fn is None:
                return False
            name = position
            if isinstance(position, int):
                params = fn.param_names
                name = params[position] if position < len(params) else None
            return name is not None and name in summary.sink_params
        if site.external is not None:
            return any(
                site.external.startswith(prefix) for prefix in self.spec.external_sinks
            )
        return False

    @staticmethod
    def _names_in(node: ast.AST) -> set[str]:
        return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}

    # -- findings ------------------------------------------------------------

    def violations(self) -> list[tuple[FunctionInfo, ast.Call, str, str]]:
        """(function, call node, tainted description, sink name) tuples."""
        results: list[tuple[FunctionInfo, ast.Call, str, str]] = []
        for qualname, fn in self.project.functions.items():
            tainted = self._tainted_vars(fn, seed_params=set())
            for site in self.graph.sites.get(qualname, ()):
                for position, arg in self._iter_args(site):
                    if not self._expr_tainted(fn, arg, tainted):
                        continue
                    if not self._position_is_sink(site, position):
                        continue
                    desc = _describe(arg)
                    sink = site.target or "<unknown>"
                    results.append((fn, site.node, desc, sink))
        return results


def _describe(node: ast.AST) -> str:
    name = _dotted(node)
    if name is not None:
        return name
    if isinstance(node, ast.Call):
        callee = _dotted(node.func)
        return f"{callee}(...)" if callee else "a call result"
    return "an expression"


# -- RL011 --------------------------------------------------------------------

_RAW_RNG = (
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "np.random.default_rng",
    "np.random.RandomState",
    "random.Random",
    "random.SystemRandom",
)


@register_flow_rule
class RngProvenanceRule(FlowRule):
    """Raw RNGs must never reach engine/solver/fault code.

    RL001 flags raw generator *construction* per file; this rule closes
    the interprocedural hole: a generator built in an allow-listed or
    suppressed location (or returned by a helper) that flows — through
    any chain of calls — into ``sim``/``cluster``/``network``/``faults``
    code still breaks run-to-run reproducibility, because its stream is
    not derived from the experiment seed.
    """

    id = "RL011"
    name = "rng-provenance"
    severity = Severity.ERROR
    description = (
        "RNG not derived from make_rng/spawn_rng reaching engine/solver/"
        "fault code through a call chain"
    )

    def run(self, project: ProjectIndex, graph: CallGraph):
        spec = TaintSpec(
            is_source=lambda name: name in _RAW_RNG,
            blessed=self.config.flow_rng_factories,
            sink_packages=self.config.flow_rng_sinks,
        )
        analysis = TaintAnalysis(project, graph, spec)
        for fn, node, desc, sink in analysis.violations():
            info = project.modules.get(fn.module)
            if info is None:
                continue
            self.report(
                info,
                node,
                f"raw RNG ({desc}) passed into {_short(sink)}(): streams "
                "reaching simulation code must derive from "
                "make_rng/spawn_rng so they are seed-stable",
            )
        return sorted(self.findings)


# -- RL012 --------------------------------------------------------------------

_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "datetime.now",
        "datetime.today",
        "datetime.utcnow",
        "date.today",
    }
)


@register_flow_rule
class WallClockProvenanceRule(FlowRule):
    """Wall-clock readings must not flow into simulated or hashed state.

    RL002 bans wall-clock calls *inside* simulation packages; this rule
    catches the indirect variant — a ``perf_counter()`` taken in
    benchmark/CLI code and passed into ``sim`` functions (contaminating
    simulated time) or into ``hashlib`` digests (contaminating the
    fingerprints run manifests are keyed on).
    """

    id = "RL012"
    name = "wallclock-provenance"
    severity = Severity.ERROR
    description = (
        "wall-clock value (time.*/perf_counter) flowing into simulated-time "
        "or fingerprinted state"
    )

    def run(self, project: ProjectIndex, graph: CallGraph):
        spec = TaintSpec(
            is_source=lambda name: name in _WALLCLOCK,
            blessed=(),
            sink_packages=self.config.flow_time_sinks,
            external_sinks=("hashlib.",),
        )
        analysis = TaintAnalysis(project, graph, spec)
        for fn, node, desc, sink in analysis.violations():
            info = project.modules.get(fn.module)
            if info is None:
                continue
            self.report(
                info,
                node,
                f"wall-clock value ({desc}) passed into {_short(sink)}(): "
                "simulated time and fingerprinted state must not depend on "
                "the host clock",
            )
        return sorted(self.findings)


def _short(qualified: str) -> str:
    parts = qualified.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualified
