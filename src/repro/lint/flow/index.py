"""Project index: every file parsed once into a queryable symbol table.

The index is the substrate every flow rule shares.  For each ``.py`` file
it records the module name, a sha256 content hash (the incremental-cache
key), the import table (local alias → qualified name), top-level
functions, classes with their methods and inferred attribute types, and
module-level globals.  :meth:`ProjectIndex.resolve` turns a dotted name
as written in one module into a project-wide qualified name, which is
what the call graph builds on.

Module naming mirrors the import system without ever importing anything:
``src/repro/sim/rng.py`` → ``repro.sim.rng`` (a leading ``src``
component is dropped), so fixtures in a temp directory shaped like
``<tmp>/repro/sim/engine.py`` index identically to the real tree.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.engine import LintEngine, _parse_suppressions

#: module-level names bound to these constructors count as mutable globals
_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "deque", "Counter")


def module_name_for(path: Path, roots: Sequence[Path]) -> str:
    """Dotted module name for ``path``, relative to the closest root.

    ``roots`` are the directories handed to the linter (e.g. ``src``,
    ``tests``); the name is the path relative to the matching root with
    a leading ``src`` component dropped and ``__init__`` trimmed.
    """
    posix = path.as_posix()
    rel: Path | None = None
    for root in sorted(roots, key=lambda r: -len(r.as_posix())):
        try:
            rel = path.relative_to(root)
            break
        except ValueError:
            continue
    if rel is None:
        rel = path
    parts = list(rel.with_suffix("").parts)
    while parts and parts[0] in ("src", "."):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # e.g. "repro.sim.engine.Simulator.run"
    module: str
    name: str
    cls: str | None  # enclosing class name, or None for module functions
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str

    @property
    def param_names(self) -> list[str]:
        a = self.node.args
        names = [p.arg for p in [*a.posonlyargs, *a.args, *a.kwonlyargs]]
        if self.cls is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names


@dataclass
class ClassInfo:
    """One class definition with method table and inferred attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  # resolved qualified names
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` assigned from a resolvable constructor → class qualname
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attributes assigned anywhere outside ``__init__`` (mutable at runtime)
    mutated_attrs: set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """Everything the flow rules need to know about one file."""

    path: str
    posix: str
    module: str
    sha256: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level assigned names (constants, registries, caches)
    globals: dict[str, ast.AST] = field(default_factory=dict)
    #: subset of ``globals`` bound to mutable containers
    mutable_globals: set[str] = field(default_factory=set)
    #: project modules this module imports (direct dependencies)
    deps: set[str] = field(default_factory=set)
    #: suppression maps, same semantics as the per-file engine
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        for scope in (self.file_suppressions, self.line_suppressions.get(line, set())):
            if rule_id in scope or "all" in scope:
                return True
        return False

    def in_packages(self, packages: Sequence[str]) -> bool:
        """Path-component test, same semantics as the per-file rules."""
        slashed = f"/{self.posix}"
        return any(f"/repro/{pkg}/" in slashed for pkg in packages)


class ProjectIndex:
    """All modules of the analyzed tree, parsed once and cross-linked."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.parse_errors: list[tuple[str, str]] = []

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[Path | str]) -> "ProjectIndex":
        """Index every ``.py`` file under ``paths`` (files or directories)."""
        files = LintEngine.iter_files(paths)
        roots = [Path(p) for p in paths if Path(p).is_dir()]
        index = cls()
        for file in files:
            index._add_file(file, roots)
        index._link()
        return index

    def _add_file(self, path: Path, roots: Sequence[Path]) -> None:
        source = path.read_text(encoding="utf-8")
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.parse_errors.append((str(path), f"line {exc.lineno}: {exc.msg}"))
            return
        module = module_name_for(path, roots)
        info = ModuleInfo(
            path=str(path),
            posix=str(path).replace("\\", "/"),
            module=module,
            sha256=digest,
            source=source,
            tree=tree,
        )
        info.line_suppressions, info.file_suppressions = _parse_suppressions(source)
        self._scan_module(info)
        self.modules[module] = info
        self.by_path[info.posix] = info

    def _scan_module(self, info: ModuleInfo) -> None:
        package = info.module.rsplit(".", 1)[0] if "." in info.module else ""
        for node in info.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[local] = target
                    # `import a.b.c` binds `a` but makes a.b.c importable;
                    # record the full module as a dependency candidate.
                    info.deps.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node, package)
                if base is None:
                    continue
                info.deps.add(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{base}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    qualname=f"{info.module}.{node.name}",
                    module=info.module,
                    name=node.name,
                    cls=None,
                    node=node,
                    path=info.path,
                )
                info.functions[node.name] = fn
            elif isinstance(node, ast.ClassDef):
                info.classes[node.name] = self._scan_class(info, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                for target in targets:
                    if isinstance(target, ast.Name):
                        info.globals[target.id] = value if value is not None else node
                        if value is not None and _is_mutable_value(value):
                            info.mutable_globals.add(target.id)

    def _scan_class(self, info: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        cinfo = ClassInfo(
            qualname=f"{info.module}.{node.name}",
            module=info.module,
            name=node.name,
            node=node,
        )
        for base in node.bases:
            name = _dotted(base)
            if name is not None:
                cinfo.bases.append(name)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    qualname=f"{cinfo.qualname}.{item.name}",
                    module=info.module,
                    name=item.name,
                    cls=node.name,
                    node=item,
                    path=info.path,
                )
                cinfo.methods[item.name] = fn
                for sub in ast.walk(item):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                        targets = (
                            sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                        )
                        for target in targets:
                            attr = _self_attr(target)
                            if attr is None:
                                continue
                            if item.name != "__init__":
                                cinfo.mutated_attrs.add(attr)
                            value = getattr(sub, "value", None)
                            if isinstance(value, ast.Call):
                                ctor = _dotted(value.func)
                                if ctor is not None:
                                    cinfo.attr_types.setdefault(attr, ctor)
                    elif isinstance(sub, ast.Subscript) and isinstance(
                        sub.ctx, (ast.Store, ast.Del)
                    ):
                        attr = _self_attr(sub.value)
                        if attr is not None and item.name != "__init__":
                            cinfo.mutated_attrs.add(attr)
        return cinfo

    @staticmethod
    def _resolve_from(node: ast.ImportFrom, package: str) -> str | None:
        if node.level == 0:
            return node.module
        parts = package.split(".") if package else []
        # level=1 is "current package"; each extra level climbs one parent.
        climb = node.level - 1
        if climb > len(parts):
            return node.module
        base_parts = parts[: len(parts) - climb] if climb else parts
        if node.module:
            base_parts = [*base_parts, node.module]
        return ".".join(base_parts) or None

    def _link(self) -> None:
        for info in self.modules.values():
            for fn in info.functions.values():
                self.functions[fn.qualname] = fn
            for cinfo in info.classes.values():
                self.classes[cinfo.qualname] = cinfo
                for fn in cinfo.methods.values():
                    self.functions[fn.qualname] = fn
            # Keep only dependencies that resolve to indexed modules: a
            # dep recorded as "repro.sim.rng.make_rng" trims to the module.
            resolved: set[str] = set()
            for dep in info.deps:
                trimmed = self._trim_to_module(dep)
                if trimmed is not None and trimmed != info.module:
                    resolved.add(trimmed)
            info.deps = resolved

    def _trim_to_module(self, dotted: str) -> str | None:
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # -- queries -------------------------------------------------------------

    def resolve(self, info: ModuleInfo, dotted: str) -> str | None:
        """Qualified name for ``dotted`` as written inside ``info``.

        Resolution order: import table (longest local prefix), then the
        module's own functions/classes/globals.  The result is qualified
        but not necessarily *indexed* — external names like
        ``numpy.random.default_rng`` resolve to themselves.
        """
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        if head in info.imports:
            return ".".join([info.imports[head], *rest])
        if head in info.functions or head in info.classes or head in info.globals:
            return ".".join([f"{info.module}.{head}", *rest])
        return dotted if "." in dotted else None

    def lookup_function(self, qualified: str) -> FunctionInfo | None:
        """Find an indexed function/method, following class constructors."""
        if qualified in self.functions:
            return self.functions[qualified]
        if qualified in self.classes:
            return self.classes[qualified].methods.get("__init__")
        return None

    def lookup_method(self, class_qualname: str, method: str) -> FunctionInfo | None:
        """Method lookup walking the project-local portion of the MRO."""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cinfo = self.classes.get(current)
            if cinfo is None:
                continue
            if method in cinfo.methods:
                return cinfo.methods[method]
            owner = self.modules.get(cinfo.module)
            for base in cinfo.bases:
                resolved = self.resolve(owner, base) if owner else base
                if resolved is not None:
                    queue.append(resolved)
        return None

    def reverse_closure(self, changed: Iterable[str]) -> set[str]:
        """Changed modules plus everything that (transitively) imports them."""
        importers: dict[str, set[str]] = {}
        for info in self.modules.values():
            for dep in info.deps:
                importers.setdefault(dep, set()).add(info.module)
        result = set(changed) & set(self.modules)
        queue = list(result)
        while queue:
            module = queue.pop()
            for importer in importers.get(module, ()):
                if importer not in result:
                    result.add(importer)
                    queue.append(importer)
        return result


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` target → ``"X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name is not None and name.split(".")[-1] in _MUTABLE_CALLS
    return False
