"""Flow-rule base class and registry.

Flow rules are whole-program: instead of a per-node ``check`` they get
the :class:`~repro.lint.flow.index.ProjectIndex` and the
:class:`~repro.lint.flow.callgraph.CallGraph` and return findings for the
entire tree in one pass.  They share the classic engine's
:class:`~repro.lint.findings.Finding` type, severity model, suppression
comments and ``disable`` config, so ``# repro-lint: disable=RL014`` works
exactly as it does for the per-file rules.
"""

from __future__ import annotations

import ast

from repro.errors import ConfigError
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.index import ModuleInfo, ProjectIndex

FLOW_RULE_REGISTRY: dict[str, type["FlowRule"]] = {}


def register_flow_rule(cls: type["FlowRule"]) -> type["FlowRule"]:
    """Class decorator adding a whole-program rule to the registry."""
    if not cls.id or not cls.id.startswith("RL"):
        raise ConfigError(f"flow rule id must look like 'RLnnn', got {cls.id!r}")
    if cls.id in FLOW_RULE_REGISTRY:
        raise ConfigError(f"duplicate flow rule id {cls.id}")
    FLOW_RULE_REGISTRY[cls.id] = cls
    return cls


class FlowRule:
    """Base class for whole-program rules (RL011+)."""

    id: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""

    def __init__(self, config: LintConfig):
        self.config = config
        self.findings: list[Finding] = []

    def run(self, project: ProjectIndex, graph: CallGraph) -> list[Finding]:
        raise NotImplementedError

    def report(self, info: ModuleInfo, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if info.is_suppressed(self.id, line):
            return
        self.findings.append(
            Finding(
                path=info.path,
                line=line,
                col=col,
                rule_id=self.id,
                rule_name=self.name,
                severity=self.severity,
                message=message,
            )
        )


def run_flow_rules(
    project: ProjectIndex, config: LintConfig | None = None
) -> list[Finding]:
    """Run every enabled flow rule over an index; sorted findings."""
    config = config or LintConfig()
    graph = CallGraph.build(project)
    findings: list[Finding] = []
    for rule_id, cls in sorted(FLOW_RULE_REGISTRY.items()):
        if config.is_disabled(rule_id):
            continue
        rule = cls(config)
        findings.extend(rule.run(project, graph))
    return sorted(findings)
