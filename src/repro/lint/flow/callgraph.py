"""Approximate call graph with attribute/method resolution.

The graph is intentionally *approximate*: it resolves what static
structure supports — direct calls, imported names (including aliases),
``self.method()`` through the project-local MRO, constructor-typed local
variables and parameters, and one level of attribute indirection through
inferred instance-attribute types (``self.flow_solver.solve()`` resolves
because ``__init__`` assigned ``self.flow_solver = FlowSolver(...)``).
Unresolvable calls are kept as *external* edges carrying their qualified
name, which is how the provenance rules recognise ``numpy.random.*`` and
``time.perf_counter`` without importing anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.lint.flow.index import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _dotted,
)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    caller: str  # qualname of the enclosing function
    node: ast.Call
    callee: str | None  # qualname of the resolved project function
    external: str | None  # qualified name when not resolved in-project

    @property
    def target(self) -> str | None:
        return self.callee if self.callee is not None else self.external


class _FunctionScope:
    """Static local-variable typing for one function body.

    Tracks two maps: ``var_types`` (local name → class qualname, from
    constructor assignments, annotations and typed instance attributes)
    and ``var_funcs`` (local name → function qualname, from bare-name
    aliasing like ``fn = run_trials``).
    """

    def __init__(
        self, project: ProjectIndex, info: ModuleInfo, fn: FunctionInfo
    ) -> None:
        self.project = project
        self.info = info
        self.fn = fn
        self.var_types: dict[str, str] = {}
        self.var_funcs: dict[str, str] = {}
        self._seed_params()
        self._seed_assignments()

    def _seed_params(self) -> None:
        args = self.fn.node.args
        for param in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if param.annotation is None:
                continue
            ann = param.annotation
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                name = ann.value.strip("\"'")
            else:
                name = _dotted(ann)
            if name is None:
                continue
            resolved = self.project.resolve(self.info, name)
            if resolved is not None and resolved in self.project.classes:
                self.var_types[param.arg] = resolved

    def _seed_assignments(self) -> None:
        for node in ast.walk(self.fn.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or value is None:
                continue
            if isinstance(value, ast.Call):
                ctor = _dotted(value.func)
                resolved = (
                    self.project.resolve(self.info, ctor) if ctor is not None else None
                )
                if resolved is not None and resolved in self.project.classes:
                    for name in names:
                        self.var_types[name] = resolved
            elif isinstance(value, (ast.Name, ast.Attribute)):
                dotted = _dotted(value)
                if dotted is None:
                    continue
                cls = self.resolve_value_type(value)
                if cls is not None:
                    for name in names:
                        self.var_types[name] = cls
                resolved = self.project.resolve(self.info, dotted)
                if resolved is not None and self.project.lookup_function(resolved):
                    for name in names:
                        self.var_funcs[name] = resolved

    # -- type resolution -----------------------------------------------------

    def resolve_value_type(self, node: ast.AST) -> str | None:
        """Class qualname of the value ``node`` evaluates to, if inferable."""
        if isinstance(node, ast.Name):
            return self.var_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base_cls = None
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                base_cls = self._own_class()
            else:
                base_cls = self.resolve_value_type(node.value)
            if base_cls is not None:
                cinfo = self.project.classes.get(base_cls)
                if cinfo is not None and node.attr in cinfo.attr_types:
                    owner = self.project.modules.get(cinfo.module)
                    ctor = cinfo.attr_types[node.attr]
                    resolved = (
                        self.project.resolve(owner, ctor) if owner else ctor
                    )
                    if resolved is not None and resolved in self.project.classes:
                        return resolved
        if isinstance(node, ast.Call):
            ctor = _dotted(node.func)
            if ctor is not None:
                resolved = self.project.resolve(self.info, ctor)
                if resolved is not None and resolved in self.project.classes:
                    return resolved
        return None

    def _own_class(self) -> str | None:
        if self.fn.cls is None:
            return None
        return f"{self.fn.module}.{self.fn.cls}"

    # -- call resolution -----------------------------------------------------

    def resolve_call(self, node: ast.Call) -> tuple[str | None, str | None]:
        """(project function qualname, external qualified name) for a call."""
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.var_funcs:
                return self.var_funcs[func.id], None
            resolved = self.project.resolve(self.info, func.id)
            if resolved is None:
                return None, func.id  # builtin or unknown bare name
            fn = self.project.lookup_function(resolved)
            return (fn.qualname if fn else None), (None if fn else resolved)
        if isinstance(func, ast.Attribute):
            # self.method() / cls.method() through the project MRO.
            if isinstance(func.value, ast.Name) and func.value.id in ("self", "cls"):
                own = self._own_class()
                if own is not None:
                    method = self.project.lookup_method(own, func.attr)
                    if method is not None:
                        return method.qualname, None
            # Typed receiver: constructor-typed local, annotated parameter,
            # or an instance attribute with an inferred type.
            receiver_cls = self.resolve_value_type(func.value)
            if receiver_cls is not None:
                method = self.project.lookup_method(receiver_cls, func.attr)
                if method is not None:
                    return method.qualname, None
            # Module attribute: mod.func() through the import table.
            dotted = _dotted(func)
            if dotted is not None:
                resolved = self.project.resolve(self.info, dotted)
                if resolved is not None:
                    fn = self.project.lookup_function(resolved)
                    if fn is not None:
                        return fn.qualname, None
                    return None, resolved
                return None, dotted
        return None, None

    def resolve_function_ref(self, node: ast.AST) -> str | None:
        """Resolve a non-call reference (e.g. ``run_trials(factory, …)``'s
        first argument) to a project function qualname."""
        if isinstance(node, ast.Name) and node.id in self.var_funcs:
            return self.var_funcs[node.id]
        dotted = _dotted(node)
        if dotted is None:
            return None
        if dotted.startswith("self.") and self.fn.cls is not None:
            own = self._own_class()
            method = (
                self.project.lookup_method(own, dotted.split(".", 1)[1])
                if own is not None and dotted.count(".") == 1
                else None
            )
            return method.qualname if method is not None else None
        resolved = self.project.resolve(self.info, dotted)
        if resolved is None:
            return None
        fn = self.project.lookup_function(resolved)
        return fn.qualname if fn is not None else None


class CallGraph:
    """Call sites per function plus forward/reverse adjacency."""

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        self.sites: dict[str, list[CallSite]] = {}
        self._forward: dict[str, set[str]] = {}
        self._reverse: dict[str, set[str]] = {}
        self._scopes: dict[str, _FunctionScope] = {}

    @classmethod
    def build(cls, project: ProjectIndex) -> "CallGraph":
        graph = cls(project)
        for fn in project.functions.values():
            info = graph.project.modules.get(fn.module)
            if info is None:
                continue
            scope = _FunctionScope(project, info, fn)
            graph._scopes[fn.qualname] = scope
            sites: list[CallSite] = []
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee, external = scope.resolve_call(node)
                sites.append(
                    CallSite(caller=fn.qualname, node=node, callee=callee, external=external)
                )
                if callee is not None:
                    graph._forward.setdefault(fn.qualname, set()).add(callee)
                    graph._reverse.setdefault(callee, set()).add(fn.qualname)
            graph.sites[fn.qualname] = sites
        return graph

    def scope(self, qualname: str) -> _FunctionScope | None:
        return self._scopes.get(qualname)

    def callees(self, qualname: str) -> set[str]:
        return self._forward.get(qualname, set())

    def callers(self, qualname: str) -> set[str]:
        return self._reverse.get(qualname, set())

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Project functions reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        queue = [r for r in roots if r in self.project.functions]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._forward.get(current, ()))
        return seen
