"""``repro.lint.flow`` — whole-program dataflow analysis (RL011–RL016).

The per-file rules in :mod:`repro.lint.rules` cannot see an unseeded RNG
smuggled through a helper function, a memoized solver reading mutable
state outside its cache key, or a module global mutated on both sides of
the spawn boundary.  This subpackage parses the whole tree **once** into
a :class:`~repro.lint.flow.index.ProjectIndex`, builds an approximate
call graph on top (:mod:`repro.lint.flow.callgraph`), and runs
interprocedural rules over it:

========  =================  ====================================================
RL011     rng-provenance     raw RNG values reaching engine/solver/fault code
RL012     wallclock-prov.    wall-clock reads flowing into simulated/hashed state
RL013     memo-impurity      memoized solvers reading state outside the cache key
RL014     spawn-shared       module/class state written by ``run_trials`` workers
RL015     guard-coverage     ``sim.obs``/``sim.check`` hooks used without a guard
RL016     unit-flow          mixed-dimension arithmetic across function boundaries
========  =================  ====================================================

Entry point: :func:`repro.lint.flow.analyzer.analyze_paths`, surfaced on
the CLI as ``repro lint --flow``.  Warm re-runs consult an incremental
cache keyed on per-file sha256 (:mod:`repro.lint.flow.cache`) so only
changed files and their reverse dependencies are re-analyzed.
"""

from __future__ import annotations

from repro.lint.flow.analyzer import FlowReport, analyze_paths
from repro.lint.flow.base import FLOW_RULE_REGISTRY, FlowRule, register_flow_rule
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.index import ProjectIndex

# Importing the rule modules populates FLOW_RULE_REGISTRY.
from repro.lint.flow import provenance as _provenance  # noqa: F401
from repro.lint.flow import purity as _purity  # noqa: F401
from repro.lint.flow import dimensions as _dimensions  # noqa: F401

__all__ = [
    "FLOW_RULE_REGISTRY",
    "FlowRule",
    "register_flow_rule",
    "ProjectIndex",
    "CallGraph",
    "FlowReport",
    "analyze_paths",
]
