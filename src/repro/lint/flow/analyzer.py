"""Orchestration: classic per-file rules + flow rules + incremental cache.

``analyze_paths`` is the engine behind ``repro lint --flow``.  One run:

1. index the tree (every file parsed exactly once — the classic rules
   and the flow rules share the parse);
2. consult the :class:`~repro.lint.flow.cache.AnalysisCache` to compute
   the *dirty set*: changed/new files plus the reverse-dependency
   closure of changed modules;
3. run the classic per-file rules on dirty files only (clean files keep
   their cached findings);
4. when anything is dirty, run the whole-program flow rules over the
   full index; findings land in per-file buckets, and clean files again
   keep their cached findings (fresh and cached agree by construction —
   the cold/warm byte-identity test in CI holds the analyzer to that);
5. write the cache back.

A fully-warm run (empty dirty set) skips rule execution entirely and
serves every finding from the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.lint.config import LintConfig
from repro.lint.engine import RULE_REGISTRY, LintEngine
from repro.lint.findings import Finding
from repro.lint.flow.base import FLOW_RULE_REGISTRY, run_flow_rules
from repro.lint.flow.cache import AnalysisCache, config_key
from repro.lint.flow.index import ProjectIndex


@dataclass
class FlowReport:
    """Findings plus the incrementality ledger for one analyzer run."""

    findings: list[Finding]
    files: list[str] = field(default_factory=list)
    analyzed: list[str] = field(default_factory=list)  # dirty: rules re-ran
    cached: list[str] = field(default_factory=list)  # served from cache
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        return len(self.cached) / len(self.files) if self.files else 0.0

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def analyze_paths(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
    cache_path: Path | str | None = None,
) -> FlowReport:
    """Run the combined (classic + flow) analysis; see module docstring."""
    config = config or LintConfig()
    index = ProjectIndex.build(paths)
    rule_ids = tuple(sorted((*RULE_REGISTRY, *FLOW_RULE_REGISTRY)))
    cache = AnalysisCache(
        Path(cache_path) if cache_path is not None else None,
        config_key(config, rule_ids),
    )

    hashes = {info.posix: info.sha256 for info in index.modules.values()}
    changed = cache.dirty_files(hashes)
    # Reverse-dependency closure: a module importing a changed module can
    # see different whole-program findings, so it is dirty too.
    changed_modules = {
        info.module for info in index.modules.values() if info.posix in changed
    }
    dirty_modules = index.reverse_closure(changed_modules)
    dirty = changed | {
        index.modules[m].posix for m in dirty_modules if m in index.modules
    }

    engine = LintEngine(config)
    buckets: dict[str, list[Finding]] = {posix: [] for posix in hashes}

    if dirty:
        # Classic per-file rules: only dirty files re-run.
        for posix in sorted(dirty):
            info = index.by_path[posix]
            buckets[posix].extend(engine.lint_source(info.source, info.path))
        # Whole-program rules: one pass over the full index; only dirty
        # files take the fresh results (clean files keep cached findings,
        # which match by construction).
        for finding in run_flow_rules(index, config):
            posix = finding.path.replace("\\", "/")
            if posix in buckets and posix in dirty:
                buckets[posix].append(finding)

    for posix in hashes:
        if posix not in dirty:
            cached = cache.findings_for(posix)
            buckets[posix] = cached if cached is not None else buckets[posix]

    # Files the index could not parse still surface as findings (RL000),
    # via the classic engine's error path; they are never cached.
    parse_findings: list[Finding] = []
    for path, _message in index.parse_errors:
        parse_findings.extend(engine.lint_file(path))

    for posix, info in ((i.posix, i) for i in index.modules.values()):
        cache.update(posix, info.sha256, sorted(info.deps), buckets[posix])
    cache.prune(set(hashes))
    cache.save()

    findings = sorted(
        [f for bucket in buckets.values() for f in bucket] + parse_findings
    )
    return FlowReport(
        findings=findings,
        files=sorted(hashes),
        analyzed=sorted(dirty),
        cached=sorted(set(hashes) - dirty),
        parse_errors=list(index.parse_errors),
    )
