"""RL016 — lightweight dimension propagation from :mod:`repro.units`.

Every quantity in the simulator is SI base units (bytes, seconds), and
the :mod:`repro.units` constructors are where dimensions enter the
program: ``mib(4)`` is bytes, ``units.HOUR`` is seconds.  This analysis
tags those values, propagates tags through assignments, arithmetic,
returns and (one round of) call-site → parameter inference, and flags
``+``/``-`` between two *different* known dimensions — the classic
mixed-unit bug (``deadline = start + mib(1)``) that type checkers cannot
see because everything is ``float``.

The algebra is deliberately tiny: bytes, seconds, and bytes/second.
``bytes / seconds → rate``, ``rate * seconds → bytes``,
``dim / dim → dimensionless``; multiplication by untagged numbers keeps
the tag.  Anything else degrades to *unknown*, which never fires.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.findings import Severity
from repro.lint.flow.base import FlowRule, register_flow_rule
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.index import FunctionInfo, ProjectIndex, _dotted

BYTES = "bytes"
SECONDS = "seconds"
RATE = "bytes/second"
DIMLESS = "dimensionless"

#: units.py constructors / constants → dimension
_BYTE_FUNCS = ("mib", "gib", "kib")
_BYTE_CONSTS = ("KB", "MB", "GB", "KB10", "MB10", "GB10")
_SECOND_CONSTS = ("MINUTE", "HOUR")

_INFER_ROUNDS = 3


def _is_units_symbol(resolved: str | None) -> Optional[str]:
    """Dimension of a resolved qualified name, if it is a units symbol."""
    if resolved is None:
        return None
    parts = resolved.split(".")
    if len(parts) < 2 or not parts[-2].endswith("units"):
        return None
    terminal = parts[-1]
    if terminal in _BYTE_FUNCS or terminal in _BYTE_CONSTS:
        return BYTES
    if terminal in _SECOND_CONSTS:
        return SECONDS
    return None


class _DimensionInference:
    """Fixpoint dimension inference over the whole project."""

    def __init__(self, project: ProjectIndex, graph: CallGraph):
        self.project = project
        self.graph = graph
        #: function qualname → dimension of its return value
        self.returns: dict[str, str] = {}
        #: (function qualname, param name) → dimension
        self.params: dict[tuple[str, str], str] = {}
        #: (function qualname, param name) → conflicting call sites seen
        self._param_conflicts: set[tuple[str, str]] = set()
        self.mixed: list[tuple[FunctionInfo, ast.BinOp, str, str]] = []

    def run(self) -> None:
        for _ in range(_INFER_ROUNDS):
            changed = self._infer_returns()
            changed |= self._infer_params()
            if not changed:
                break
        self._detect()

    # -- expression typing ---------------------------------------------------

    def dim_of(self, fn: FunctionInfo, node: ast.AST, local: dict[str, str]) -> str | None:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
                return None
            return DIMLESS
        if isinstance(node, ast.Name):
            if node.id in local:
                return local[node.id]
            return self._symbol_dim(fn, node.id)
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None:
                return self._symbol_dim(fn, dotted)
            return None
        if isinstance(node, ast.Call):
            return self._call_dim(fn, node)
        if isinstance(node, ast.UnaryOp):
            return self.dim_of(fn, node.operand, local)
        if isinstance(node, ast.IfExp):
            a = self.dim_of(fn, node.body, local)
            b = self.dim_of(fn, node.orelse, local)
            return a if a == b else None
        if isinstance(node, ast.BinOp):
            return self._binop_dim(fn, node, local)
        return None

    def _symbol_dim(self, fn: FunctionInfo, dotted: str) -> str | None:
        info = self.project.modules.get(fn.module)
        if info is None:
            return None
        resolved = self.project.resolve(info, dotted)
        dim = _is_units_symbol(resolved)
        if dim is not None:
            return dim
        return self.params.get((fn.qualname, dotted))

    def _call_dim(self, fn: FunctionInfo, node: ast.Call) -> str | None:
        name = _dotted(node.func)
        info = self.project.modules.get(fn.module)
        if name is not None and info is not None:
            resolved = self.project.resolve(info, name)
            dim = _is_units_symbol(resolved)
            if dim is not None:
                return dim
        scope = self.graph.scope(fn.qualname)
        if scope is not None:
            callee, _ = scope.resolve_call(node)
            if callee is not None:
                return self.returns.get(callee)
        return None

    def _binop_dim(self, fn: FunctionInfo, node: ast.BinOp, local: dict[str, str]) -> str | None:
        left = self.dim_of(fn, node.left, local)
        right = self.dim_of(fn, node.right, local)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left == right:
                return left
            if DIMLESS in (left, right):
                # ``x + 1`` keeps x's dimension (epsilon offsets etc.)
                return left if right == DIMLESS else right
            return None  # mixed or unknown; _detect reports the mix
        if isinstance(node.op, ast.Mult):
            pair = {left, right}
            if pair == {RATE, SECONDS}:
                return BYTES
            if DIMLESS in pair:
                other = left if right == DIMLESS else right
                return other
            return None
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left == right and left is not None:
                return DIMLESS
            if left == BYTES and right == SECONDS:
                return RATE
            if left == BYTES and right == RATE:
                return SECONDS
            if right == DIMLESS:
                return left
            return None
        if isinstance(node.op, ast.Mod):
            return left
        return None

    # -- locals --------------------------------------------------------------

    def _locals_for(self, fn: FunctionInfo) -> dict[str, str]:
        local: dict[str, str] = {}
        for _ in range(2):
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    value = node.value
                    if value is None:
                        continue
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    dim = self.dim_of(fn, value, local)
                    for target in targets:
                        if isinstance(target, ast.Name):
                            if dim is not None and dim != DIMLESS:
                                local[target.id] = dim
                            else:
                                local.pop(target.id, None)
        return local

    # -- fixpoint ------------------------------------------------------------

    def _infer_returns(self) -> bool:
        changed = False
        for qualname, fn in self.project.functions.items():
            local = self._locals_for(fn)
            dims: set[str] = set()
            has_return = False
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    has_return = True
                    dim = self.dim_of(fn, node.value, local)
                    dims.add(dim if dim is not None else "?")
            if has_return and len(dims) == 1:
                (dim,) = dims
                if dim != "?" and self.returns.get(qualname) != dim:
                    self.returns[qualname] = dim
                    changed = True
        return changed

    def _infer_params(self) -> bool:
        changed = False
        for qualname, fn in self.project.functions.items():
            local = self._locals_for(fn)
            for site in self.graph.sites.get(qualname, ()):
                if site.callee is None:
                    continue
                callee = self.project.functions.get(site.callee)
                if callee is None:
                    continue
                params = callee.param_names
                pairs: list[tuple[str, ast.AST]] = [
                    (params[i], arg)
                    for i, arg in enumerate(site.node.args)
                    if i < len(params) and not isinstance(arg, ast.Starred)
                ]
                pairs += [
                    (kw.arg, kw.value) for kw in site.node.keywords if kw.arg in params
                ]
                for pname, arg in pairs:
                    key = (site.callee, pname)
                    if key in self._param_conflicts:
                        continue
                    dim = self.dim_of(fn, arg, local)
                    if dim is None or dim == DIMLESS:
                        continue
                    known = self.params.get(key)
                    if known is None:
                        self.params[key] = dim
                        changed = True
                    elif known != dim:
                        # call sites disagree: withdraw the inference
                        del self.params[key]
                        self._param_conflicts.add(key)
                        changed = True
        return changed

    # -- detection -----------------------------------------------------------

    def _detect(self) -> None:
        real = (BYTES, SECONDS, RATE)
        for qualname, fn in self.project.functions.items():
            local = self._locals_for(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.BinOp) or not isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    continue
                left = self.dim_of(fn, node.left, local)
                right = self.dim_of(fn, node.right, local)
                if left in real and right in real and left != right:
                    self.mixed.append((fn, node, left, right))


@register_flow_rule
class UnitFlowRule(FlowRule):
    """Mixed-dimension arithmetic across function boundaries.

    ``mib(100) + HOUR`` adds bytes to seconds — obviously wrong at the
    call site, invisible once the byte count has travelled through two
    helpers and a parameter.  This rule propagates the dimension tags
    :mod:`repro.units` constructors establish through assignments,
    returns and parameters, and flags additive mixing wherever the two
    operands' dimensions are both known and differ.
    """

    id = "RL016"
    name = "unit-flow"
    severity = Severity.WARNING
    description = (
        "mixed-dimension arithmetic (bytes vs seconds vs bytes/s) through "
        "assignments, returns and parameters"
    )

    def run(self, project: ProjectIndex, graph: CallGraph):
        inference = _DimensionInference(project, graph)
        inference.run()
        op_names = {ast.Add: "+", ast.Sub: "-"}
        for fn, node, left, right in inference.mixed:
            info = project.modules.get(fn.module)
            if info is None:
                continue
            op = op_names.get(type(node.op), "?")
            self.report(
                info,
                node,
                f"mixed-dimension arithmetic in {fn.name}(): {left} {op} "
                f"{right}; both operands trace back to repro.units "
                "constructors of different dimensions",
            )
        return sorted(self.findings)
