"""Purity and race rules: RL013 (memo-impurity), RL014 (spawn-shared-state)
and RL015 (guard-coverage).

These three rules protect different invariants with the same shape — a
*region* of the call graph (a memoized computation, the worker side of
the spawn boundary, a hook call site) must not touch state the region's
contract does not cover.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.flow.base import FlowRule, register_flow_rule
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.index import FunctionInfo, ProjectIndex, _dotted

#: method names that mutate their receiver in place
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "appendleft", "extendleft",
        "sort", "reverse",
    }
)


# -- RL013 --------------------------------------------------------------------

#: local names whose assignment is taken as "the cache key expression"
_KEY_NAMES = ("signature", "key", "cache_key", "memo_key")


@register_flow_rule
class MemoImpurityRule(FlowRule):
    """Memoized solves must be pure functions of their cache key.

    A memo entry is only as valid as its key: if the computation behind
    ``FlowSolver.solve`` or the per-node solve cache reads instance state
    that (a) is mutated at runtime and (b) does not appear in the key
    expression, a cache hit can silently return a result computed under
    *different* state — the exact class of bug the memoized-vs-cold
    differential oracle exists to catch, found here statically.
    """

    id = "RL013"
    name = "memo-impurity"
    severity = Severity.WARNING
    description = (
        "memoized solver reads runtime-mutated attributes/globals not "
        "captured in its cache key"
    )

    def run(self, project: ProjectIndex, graph: CallGraph):
        for suffix in self.config.flow_memo_functions:
            for qualname, fn in sorted(project.functions.items()):
                if qualname.endswith(suffix) and fn.cls is not None:
                    self._check_memo(project, graph, fn)
        return sorted(self.findings)

    def _check_memo(
        self, project: ProjectIndex, graph: CallGraph, fn: FunctionInfo
    ) -> None:
        class_qualname = f"{fn.module}.{fn.cls}"
        cinfo = project.classes.get(class_qualname)
        if cinfo is None:
            return
        key_attrs = self._key_attrs(fn)
        allowed = (
            set(self.config.flow_memo_state_allowed)
            | set(self.config.flow_memo_derived_state)
            | key_attrs
        )
        # The whole computation: the memoized entry point plus every
        # same-class method reachable from it.
        region = [
            project.functions[q]
            for q in sorted(graph.reachable([fn.qualname]))
            if project.functions[q].cls == fn.cls
            and project.functions[q].module == fn.module
        ]
        reported: set[tuple[str, str]] = set()
        for member in region:
            info = project.modules.get(member.module)
            if info is None:
                continue
            parents = _parent_map(member.node)
            for node in ast.walk(member.node):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    continue
                # `self.X[...] = v` (possibly nested, `self.X[a][b] = v`):
                # the attribute base of a subscript-store chain is a write
                # site, not a state *read*.
                parent = parents.get(node)
                while isinstance(parent, ast.Subscript):
                    if isinstance(parent.ctx, (ast.Store, ast.Del)):
                        break
                    parent = parents.get(parent)
                if isinstance(parent, ast.Subscript):
                    continue
                attr = node.attr
                if attr in allowed or attr not in cinfo.mutated_attrs:
                    continue
                dedupe = (member.qualname, attr)
                if dedupe in reported:
                    continue
                reported.add(dedupe)
                self.report(
                    info,
                    node,
                    f"memoized {fn.cls}.{fn.name}() reads self.{attr} "
                    f"(mutated outside __init__) via {member.name}(), but "
                    "the cache key does not include it; a memo hit may "
                    "return a result computed under different state",
                )

    @staticmethod
    def _key_attrs(fn: FunctionInfo) -> set[str]:
        """``self.<attr>`` names the cache-key expression depends on.

        Array-fingerprint keys rarely name their state directly: the
        idiom is ``demands = self._rates[rows] * self._S[rows]`` followed
        by ``signature = (token, demands.tobytes())`` — the attribute
        reads hide behind locals that feed the fingerprint.  A fixpoint
        over the function's simple local assignments propagates
        self-attribute provenance through those locals (including
        aliases like ``seg_keys = self._seg_key_list``), so every
        attribute whose *contents* reach the key bytes counts as
        key-covered.  The closure is flow-insensitive (both arms of a
        branch contribute), which errs toward treating state as covered
        — acceptable for a WARNING-severity rule whose ground truth is
        the runtime differential oracle.
        """
        assigns = [
            node for node in ast.walk(fn.node) if isinstance(node, ast.Assign)
        ]

        def reads(expr: ast.AST, local_attrs: dict[str, set[str]]) -> set[str]:
            found: set[str] = set()
            for sub in ast.walk(expr):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    found.add(sub.attr)
                elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    found |= local_attrs.get(sub.id, set())
            return found

        local_attrs: dict[str, set[str]] = {}
        changed = True
        while changed:
            changed = False
            for node in assigns:
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if not names:
                    continue
                attrs = reads(node.value, local_attrs)
                for name in names:
                    known = local_attrs.setdefault(name, set())
                    if not attrs <= known:
                        known |= attrs
                        changed = True

        attrs: set[str] = set()
        for node in assigns:
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if any(name in _KEY_NAMES for name in names):
                attrs |= reads(node.value, local_attrs)
        return attrs


# -- RL014 --------------------------------------------------------------------


@register_flow_rule
class SpawnSharedStateRule(FlowRule):
    """Worker code must not write module- or class-level state.

    ``run_trials`` promises byte-identical results for any ``--jobs``
    because every trial is a pure function of its payload.  A write to a
    module global or a class attribute anywhere in the code reachable
    from a worker entry point breaks that promise twice over: under
    ``jobs>1`` each spawned worker mutates its *own* copy (silent
    divergence from serial runs), and under ``jobs=1`` trial N leaks
    state into trial N+1 (results depend on execution order).
    """

    id = "RL014"
    name = "spawn-shared-state"
    severity = Severity.ERROR
    description = (
        "module/class-level mutable state written by code reachable from "
        "run_trials workers"
    )

    def run(self, project: ProjectIndex, graph: CallGraph):
        roots = self._worker_roots(project, graph)
        for qualname in sorted(graph.reachable(roots)):
            fn = project.functions[qualname]
            info = project.modules.get(fn.module)
            if info is None:
                continue
            self._check_function(project, info, fn)
        return sorted(self.findings)

    def _worker_roots(self, project: ProjectIndex, graph: CallGraph) -> set[str]:
        entrypoints = set(self.config.flow_worker_entrypoints)
        roots: set[str] = set()
        for qualname, sites in graph.sites.items():
            scope = graph.scope(qualname)
            if scope is None:
                continue
            for site in sites:
                target = site.target
                if target is None or target.split(".")[-1] not in entrypoints:
                    continue
                if not site.node.args:
                    continue
                factory = site.node.args[0]
                resolved = scope.resolve_function_ref(factory)
                if resolved is not None:
                    roots.add(resolved)
                elif isinstance(factory, ast.Lambda):
                    # fan the lambda's own calls out as roots
                    for sub in ast.walk(factory.body):
                        if isinstance(sub, ast.Call):
                            callee, _ = scope.resolve_call(sub)
                            if callee is not None:
                                roots.add(callee)
        return roots

    def _check_function(self, project: ProjectIndex, info, fn: FunctionInfo) -> None:
        declared_global = {
            name
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        local_names = {
            t.id
            for node in ast.walk(fn.node)
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
            for t in (node.targets if isinstance(node, ast.Assign) else [node.target])
            if isinstance(t, ast.Name)
        } - declared_global
        for node in ast.walk(fn.node):
            # `global X` rebinding
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared_global:
                        self.report(
                            info,
                            node,
                            f"worker-reachable {fn.name}() rebinds module "
                            f"global {target.id!r}: state written behind the "
                            "spawn boundary diverges between jobs=1 and jobs>1",
                        )
                    # MODULE_GLOBAL[...] = v  /  ClassName.attr = v
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        self._check_store_target(project, info, fn, node, target, local_names)
            # MODULE_GLOBAL.append(...) and friends
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in _MUTATORS:
                    continue
                base = node.func.value
                root = self._module_global_root(info, base, local_names)
                if root is not None:
                    self.report(
                        info,
                        node,
                        f"worker-reachable {fn.name}() mutates module-level "
                        f"{root!r} via .{node.func.attr}(): shared state "
                        "written by trials breaks jobs=N reproducibility",
                    )

    def _check_store_target(
        self, project, info, fn: FunctionInfo, stmt, target, local_names: set[str]
    ) -> None:
        if isinstance(target, ast.Subscript):
            root = self._module_global_root(info, target.value, local_names)
            if root is not None:
                self.report(
                    info,
                    stmt,
                    f"worker-reachable {fn.name}() writes into module-level "
                    f"{root!r}: shared state written by trials breaks "
                    "jobs=N reproducibility",
                )
        elif isinstance(target, ast.Attribute):
            dotted = _dotted(target.value)
            if dotted is None or dotted.startswith("self"):
                return
            resolved = project.resolve(info, dotted)
            if resolved is not None and resolved in project.classes:
                self.report(
                    info,
                    stmt,
                    f"worker-reachable {fn.name}() writes class attribute "
                    f"{dotted}.{target.attr}: class-level state crosses the "
                    "spawn boundary and breaks jobs=N reproducibility",
                )

    @staticmethod
    def _module_global_root(info, node: ast.AST, local_names: set[str]) -> str | None:
        if not isinstance(node, ast.Name):
            return None
        name = node.id
        if name in local_names or name not in info.globals:
            return None
        if name in info.mutable_globals or name in info.globals:
            return name
        return None


# -- RL015 --------------------------------------------------------------------


@register_flow_rule
class GuardCoverageRule(FlowRule):
    """Optional hooks must be used behind the zero-cost guard.

    The observability and invariant hooks (``sim.obs`` / ``sim.check`` /
    ``flow_solver.check``) are ``None`` unless a collector is attached —
    that is what makes an untraced run free.  Calling through the hook
    without the ``is not None`` guard either crashes untraced runs or,
    worse, forces call sites to attach collectors defensively, paying
    the cost everywhere.
    """

    id = "RL015"
    name = "guard-coverage"
    severity = Severity.ERROR
    description = (
        "hook site (sim.obs/sim.check) called without the `is not None` "
        "zero-cost guard"
    )

    def run(self, project: ProjectIndex, graph: CallGraph):
        hooks = set(self.config.flow_guard_hooks)
        for qualname, fn in sorted(project.functions.items()):
            info = project.modules.get(fn.module)
            if info is None or not info.in_packages(self.config.flow_guard_packages):
                continue
            parents = _parent_map(fn.node)
            guards = _none_guards(fn.node)
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                    continue
                receiver = _dotted(node.func.value)
                if receiver is None or receiver.split(".")[-1] not in hooks:
                    continue
                if self._is_guarded(node, receiver, parents, guards):
                    continue
                self.report(
                    info,
                    node,
                    f"call through optional hook {receiver} without a guard; "
                    f"wrap in `if {receiver} is not None:` so unattached "
                    "runs stay zero-cost",
                )
        return sorted(self.findings)

    @staticmethod
    def _is_guarded(
        call: ast.Call,
        receiver: str,
        parents: dict[ast.AST, ast.AST],
        guards: list[tuple[int, str]],
    ) -> bool:
        # (a) enclosing if/while/ternary/boolop test mentioning the receiver
        current: ast.AST | None = parents.get(call)
        while current is not None:
            test = None
            if isinstance(current, (ast.If, ast.While, ast.IfExp)):
                test = current.test
            elif isinstance(current, ast.Assert):
                test = current.test
            elif isinstance(current, ast.BoolOp) and isinstance(current.op, ast.And):
                test = current
            if test is not None and _mentions(test, receiver):
                return True
            current = parents.get(current)
        # (b) an earlier `if recv is None: return/raise/continue` (or an
        # assert) anywhere above the call in the same function
        line = getattr(call, "lineno", 0)
        return any(g_line < line and g_recv == receiver for g_line, g_recv in guards)


def _parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _mentions(test: ast.AST, receiver: str) -> bool:
    """True if the guard expression names the receiver (``X``, ``X is not
    None`` or any compare/boolop containing it)."""
    for node in ast.walk(test):
        if _dotted(node) == receiver:
            return True
    return False


def _none_guards(fn_node: ast.AST) -> list[tuple[int, str]]:
    """(line, receiver) for early-exit `if X is None:` guards and asserts."""
    guards: list[tuple[int, str]] = []
    for node in ast.walk(fn_node):
        if isinstance(node, ast.If):
            receiver = _is_none_test(node.test)
            if receiver is not None and node.body:
                last = node.body[-1]
                if isinstance(last, (ast.Return, ast.Raise, ast.Continue)):
                    guards.append((node.lineno, receiver))
        elif isinstance(node, ast.Assert):
            receiver = _is_not_none_test(node.test)
            if receiver is not None:
                guards.append((node.lineno, receiver))
    return guards


def _is_none_test(test: ast.AST) -> str | None:
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return _dotted(test.left)
    return None


def _is_not_none_test(test: ast.AST) -> str | None:
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return _dotted(test.left)
    return None
