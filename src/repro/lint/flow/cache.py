"""Incremental analysis cache keyed on per-file sha256.

The cache file records, per analyzed file: its content hash, the project
modules it depends on, and the findings attributed to it on the last
run.  A warm run re-analyzes only the *dirty set* — files whose hash
changed, files new to the cache, and every reverse dependency of a
changed file (a change in ``sim/rng.py`` can alter findings reported in
any module that imports it, so dependents are invalidated too).  Clean
files are served their cached findings verbatim, which is what makes a
warm re-run byte-identical to a cold one.

The cache is invalidated wholesale when the linter's configuration or
rule registry changes (``config_key`` mismatch) and is always written in
canonical JSON so the file itself is deterministic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity

CACHE_VERSION = 1


def config_key(config: LintConfig, rule_ids: tuple[str, ...]) -> str:
    """Digest of everything that invalidates cached findings."""
    payload = {
        "version": CACHE_VERSION,
        "rules": sorted(rule_ids),
        "config": {
            field: list(getattr(config, field))
            for field in sorted(config.__dataclass_fields__)
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _finding_to_dict(finding: Finding) -> dict:
    data = asdict(finding)
    data["severity"] = finding.severity.value
    return data


def _finding_from_dict(data: dict) -> Finding:
    return Finding(
        path=data["path"],
        line=int(data["line"]),
        col=int(data["col"]),
        rule_id=data["rule_id"],
        rule_name=data["rule_name"],
        severity=Severity(data["severity"]),
        message=data["message"],
    )


class AnalysisCache:
    """Load/plan/update/save cycle for one lint run."""

    def __init__(self, path: Path | None, key: str):
        self.path = path
        self.key = key
        self.entries: dict[str, dict] = {}
        self.valid = False
        if path is not None and path.is_file():
            self._load(path)

    def _load(self, path: Path) -> None:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if data.get("version") != CACHE_VERSION or data.get("config_key") != self.key:
            return
        files = data.get("files")
        if isinstance(files, dict):
            self.entries = files
            self.valid = True

    # -- planning ------------------------------------------------------------

    def dirty_files(self, hashes: dict[str, str]) -> set[str]:
        """Posix paths whose content hash is new or changed (or uncached)."""
        dirty: set[str] = set()
        for posix, digest in hashes.items():
            entry = self.entries.get(posix)
            if entry is None or entry.get("sha256") != digest:
                dirty.add(posix)
        return dirty

    def findings_for(self, posix: str) -> list[Finding] | None:
        entry = self.entries.get(posix)
        if entry is None:
            return None
        return [_finding_from_dict(d) for d in entry.get("findings", [])]

    # -- updating ------------------------------------------------------------

    def update(
        self,
        posix: str,
        sha256: str,
        deps: list[str],
        findings: list[Finding],
    ) -> None:
        self.entries[posix] = {
            "sha256": sha256,
            "deps": sorted(deps),
            "findings": [_finding_to_dict(f) for f in sorted(findings)],
        }

    def prune(self, keep: set[str]) -> None:
        """Drop entries for files no longer part of the analyzed set."""
        for posix in list(self.entries):
            if posix not in keep:
                del self.entries[posix]

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "version": CACHE_VERSION,
            "config_key": self.key,
            "files": {k: self.entries[k] for k in sorted(self.entries)},
        }
        self.path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
