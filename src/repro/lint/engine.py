"""Rule-registry engine: one AST walk per file, shared by all rules.

The engine owns everything rules have in common — parsing, a parent map
for upward navigation, package/path scoping, suppression comments and the
global rule registry — so each rule in :mod:`repro.lint.rules` is just a
small ``check`` method over the node types it cares about.

Suppressions
------------
``# repro-lint: disable=RL001`` (comma-separate for several, or ``all``):

* trailing a code line — suppresses those rules on that line only;
* on a line of its own — suppresses those rules for the whole file.

Findings are attached to the line of the offending AST node, so a trailing
suppression goes on the line the report points at.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity

SUPPRESS_ALL = "all"
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

#: Rule id reserved for files the engine itself cannot analyse.
PARSE_ERROR_ID = "RL000"

RULE_REGISTRY: dict[str, type["Rule"]] = {}


def register_rule(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or not cls.id.startswith("RL"):
        raise ConfigError(f"rule id must look like 'RLnnn', got {cls.id!r}")
    if cls.id in RULE_REGISTRY:
        raise ConfigError(f"duplicate rule id {cls.id}")
    RULE_REGISTRY[cls.id] = cls
    return cls


class Rule:
    """Base class for lint rules.

    Subclasses set the metadata class attributes, list the AST node types
    they want to see in ``node_types``, and implement :meth:`check`.
    """

    id: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""
    node_types: tuple[type[ast.AST], ...] = ()

    def check(self, node: ast.AST, ctx: "LintContext") -> None:
        raise NotImplementedError


class LintContext:
    """Per-file state handed to every rule invocation."""

    def __init__(self, path: str, tree: ast.Module, source: str, config: LintConfig):
        self.path = path
        self.posix = path.replace("\\", "/")
        self.config = config
        self.tree = tree
        self.findings: list[Finding] = []
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._line_suppressions, self._file_suppressions = _parse_suppressions(source)

    # -- navigation -----------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    # -- scoping --------------------------------------------------------------

    @property
    def in_library(self) -> bool:
        """True for files inside the installed ``repro`` package."""
        return "/repro/" in f"/{self.posix}"

    def in_packages(self, packages: Sequence[str]) -> bool:
        """True if the file lives under ``repro/<pkg>/`` for any listed pkg."""
        slashed = f"/{self.posix}"
        return any(f"/repro/{pkg}/" in slashed for pkg in packages)

    def matches_any(self, suffixes: Sequence[str]) -> bool:
        """True if the file path ends with any of the given path suffixes."""
        return any(self.posix.endswith(suffix) for suffix in suffixes)

    # -- reporting ------------------------------------------------------------

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        for scope in (self._file_suppressions, self._line_suppressions.get(line, set())):
            if rule_id in scope or SUPPRESS_ALL in scope:
                return True
        return False

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.is_suppressed(rule.id, line):
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col,
                rule_id=rule.id,
                rule_name=rule.name,
                severity=rule.severity,
                message=message,
            )
        )


def _parse_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Extract (line -> rule ids, file-wide rule ids) from comments."""
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            own_line = tok.line[: tok.start[1]].strip() == ""
            if own_line:
                per_file |= rules
            else:
                per_line.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # unparseable source: the ast.parse pass reports the real error
    return per_line, per_file


class LintEngine:
    """Runs every registered (and enabled) rule over files or source text."""

    def __init__(self, config: LintConfig | None = None):
        self.config = config or LintConfig()
        self.rules = [
            cls()
            for rule_id, cls in sorted(RULE_REGISTRY.items())
            if not self.config.is_disabled(rule_id)
        ]

    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint source text as if it lived at ``path`` (drives scoping)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=PARSE_ERROR_ID,
                    rule_name="parse-error",
                    severity=Severity.ERROR,
                    message=f"cannot parse file: {exc.msg}",
                )
            ]
        ctx = LintContext(path=path, tree=tree, source=source, config=self.config)
        dispatch = [(rule, rule.node_types) for rule in self.rules]
        for node in ast.walk(tree):
            for rule, types in dispatch:
                if isinstance(node, types):
                    rule.check(node, ctx)
        return sorted(ctx.findings)

    def lint_file(self, path: Path | str) -> list[Finding]:
        path = Path(path)
        return self.lint_source(path.read_text(encoding="utf-8"), str(path))

    def lint_paths(self, paths: Sequence[Path | str]) -> list[Finding]:
        """Lint files and directories (recursively); deterministic order."""
        findings: list[Finding] = []
        for path in self.iter_files(paths):
            findings.extend(self.lint_file(path))
        return findings

    @staticmethod
    def iter_files(paths: Sequence[Path | str]) -> list[Path]:
        """Expand arguments into a sorted, de-duplicated list of .py files."""
        seen: dict[Path, None] = {}
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    seen.setdefault(file, None)
            elif path.is_file():
                seen.setdefault(path, None)
            else:
                raise ConfigError(f"no such file or directory: {path}")
        return sorted(seen)


# -- module-level conveniences ------------------------------------------------


def lint_source(source: str, path: str = "<string>", config: LintConfig | None = None) -> list[Finding]:
    return LintEngine(config).lint_source(source, path)


def lint_file(path: Path | str, config: LintConfig | None = None) -> list[Finding]:
    return LintEngine(config).lint_file(path)


def lint_paths(paths: Sequence[Path | str], config: LintConfig | None = None) -> list[Finding]:
    return LintEngine(config).lint_paths(paths)
