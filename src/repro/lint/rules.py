"""Concrete determinism & unit-safety rules (RL001–RL010).

Each rule encodes one convention this repository relies on for
reproducibility.  The docstring of each rule class is its user-facing
rationale (``python -m repro lint --list-rules`` prints them); docs/LINT.md
carries worked examples.
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, register_rule
from repro.lint.findings import Severity


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` from a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    return dotted_name(node.func)


_SET_PRODUCERS = ("set", "frozenset")


def is_unordered_expr(node: ast.AST, include_dict_views: bool = False) -> str | None:
    """If ``node`` evaluates to an unordered collection, say which kind.

    Dict views are insertion-ordered in Python and only hazardous when the
    *consumer* is order-sensitive (float accumulation, first-match picks),
    so they are reported only when ``include_dict_views`` is set.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in _SET_PRODUCERS:
            return f"a {name}()"
        if (
            include_dict_views
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("values", "keys", "items")
            and not node.args
        ):
            return f"dict.{node.func.attr}()"
    return None


@register_rule
class SeededRngRule(Rule):
    """All randomness must flow through ``make_rng``/``spawn_rng``.

    Direct ``random`` / ``np.random`` use creates streams that are not
    derived from the experiment seed, so runs stop being reproducible and
    adding a consumer perturbs every stream created after it.
    """

    id = "RL001"
    name = "seeded-rng"
    severity = Severity.ERROR
    description = (
        "direct random/np.random use outside sim/rng.py; "
        "use repro.sim.rng.make_rng/spawn_rng"
    )
    node_types = (ast.Call, ast.Import, ast.ImportFrom)

    _BANNED_PREFIXES = ("random.", "np.random.", "numpy.random.")
    _BANNED_MODULES = ("random", "numpy.random")

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if ctx.matches_any(ctx.config.rng_allowed):
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in self._BANNED_MODULES:
                    ctx.report(
                        self, node,
                        f"import of {alias.name!r}: derive streams via "
                        "repro.sim.rng.make_rng/spawn_rng instead",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            if node.module in self._BANNED_MODULES:
                ctx.report(
                    self, node,
                    f"import from {node.module!r}: derive streams via "
                    "repro.sim.rng.make_rng/spawn_rng instead",
                )
            return
        name = call_name(node)
        if name is None:
            return
        if name.startswith(self._BANNED_PREFIXES):
            ctx.report(
                self, node,
                f"call to {name}(): unseeded/raw RNG breaks run-to-run "
                "reproducibility; use make_rng/spawn_rng from repro.sim.rng",
            )


@register_rule
class WallClockRule(Rule):
    """Simulation code must use simulated time, never the wall clock.

    A wall-clock read inside ``sim``/``core``/``apps``/``experiments``
    couples results to host speed and load — exactly the variability the
    paper injects on purpose and the simulator must not leak by accident.
    """

    id = "RL002"
    name = "wall-clock"
    severity = Severity.ERROR
    description = "wall-clock reads (time.time, datetime.now, perf_counter) in simulation packages"
    node_types = (ast.Call,)

    _BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.now",
            "datetime.today",
            "datetime.utcnow",
            "datetime.datetime.now",
            "datetime.datetime.today",
            "datetime.datetime.utcnow",
            "date.today",
            "datetime.date.today",
        }
    )

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_packages(ctx.config.wallclock_packages):
            return
        if ctx.matches_any(ctx.config.wallclock_allowed):
            # Observability-only timers (repro.sim.stats) measure host cost
            # without feeding simulated state.
            return
        name = call_name(node)
        if name in self._BANNED:
            ctx.report(
                self, node,
                f"call to {name}(): simulation state must depend only on "
                "simulated time (sim.now), not the host wall clock",
            )


@register_rule
class UnorderedIterationRule(Rule):
    """Scheduling/aggregation must not iterate unordered collections.

    Set iteration order depends on hash seeding and insertion history;
    feeding it into event scheduling or float accumulation makes results
    run-order dependent.  Wrap in ``sorted(...)`` to fix.
    """

    id = "RL003"
    name = "unordered-iter"
    severity = Severity.WARNING
    description = "iteration/aggregation over set()/dict.values() without sorted() in sim/scheduling"
    node_types = (ast.For, ast.comprehension, ast.Call)

    _AGGREGATORS = ("min", "max", "sum", "any", "all")

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_packages(ctx.config.ordering_packages):
            return
        if isinstance(node, (ast.For, ast.comprehension)):
            kind = is_unordered_expr(node.iter)
            if kind is not None:
                ctx.report(
                    self, node.iter,
                    f"iterating {kind}: order is not deterministic across "
                    "runs; wrap in sorted(...) with an explicit key",
                )
            return
        # Aggregator call over an unordered argument.  Dict views count
        # here: sum() over float .values() accumulates in insertion order,
        # which silently depends on the population history of the dict.
        name = call_name(node)
        if name in self._AGGREGATORS and node.args:
            kind = is_unordered_expr(node.args[0], include_dict_views=name == "sum")
            if kind is not None:
                ctx.report(
                    self, node,
                    f"{name}() over {kind}: accumulation order is not "
                    "deterministic; wrap the argument in sorted(...)",
                )


@register_rule
class FloatEqualityRule(Rule):
    """Simulated times/rates are floats; compare with tolerances.

    ``==``/``!=`` against float literals is brittle under accumulation
    order and optimisation level — use ``math.isclose`` or an explicit
    epsilon, or restructure to an ordering comparison.
    """

    id = "RL004"
    name = "float-equality"
    severity = Severity.WARNING
    description = "==/!= comparisons against float literals or time/rate-named values"
    node_types = (ast.Compare,)

    _TIMEY = (
        "now", "time", "rate", "bandwidth", "duration", "elapsed",
        "deadline", "latency", "runtime", "remaining",
    )

    def _is_float_literal(self, node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    def _is_timey_name(self, node: ast.AST) -> bool:
        name = dotted_name(node)
        if name is None:
            return False
        terminal = name.rsplit(".", 1)[-1].lower()
        return any(term in terminal for term in self._TIMEY)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_library:
            return
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            if any(self._is_float_literal(side) for side in pair) or (
                any(self._is_timey_name(side) for side in pair)
                and all(
                    self._is_timey_name(side) or self._is_float_literal(side)
                    for side in pair
                )
            ):
                ctx.report(
                    self, node,
                    "float equality on a simulated quantity: use "
                    "math.isclose(a, b) or an ordering comparison",
                )
                return


@register_rule
class MagicUnitsRule(Rule):
    """Byte/second quantities must come from :mod:`repro.units`.

    Raw ``1048576``-style literals hide whether a quantity is binary or
    decimal, bytes or seconds, and drift from the paper's configuration
    tables; ``mib()``, ``gib()``, ``MB`` and ``HOUR`` say what they mean.
    """

    id = "RL005"
    name = "magic-units"
    severity = Severity.WARNING
    description = "raw byte/second literals (1048576, 3600, ...) where units.py helpers exist"
    node_types = (ast.Constant, ast.BinOp)

    # The table below must spell out the raw literals it teaches people to
    # avoid, so this file exempts itself from its own rule.
    # repro-lint: disable=RL005
    _SUGGESTIONS = {
        1048576: "mib(1) or units.MB",
        104857600: "mib(100)",
        1073741824: "gib(1) or units.GB",
        1099511627776: "gib(1024)",
        3600: "units.HOUR",
        86400: "24 * units.HOUR",
    }

    def _fold(self, node: ast.AST) -> float | int | None:
        """Constant-fold numeric literals combined with * and **."""
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            if isinstance(node.value, bool):
                return None
            return node.value
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mult, ast.Pow)):
            left, right = self._fold(node.left), self._fold(node.right)
            if left is None or right is None:
                return None
            return left * right if isinstance(node.op, ast.Mult) else left**right
        return None

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_library or ctx.matches_any(ctx.config.units_allowed):
            return
        # Only report the outermost node of a folded expression.
        parent = ctx.parent(node)
        if isinstance(parent, ast.BinOp) and self._fold(parent) is not None:
            return
        value = self._fold(node)
        if value is None:
            return
        for magic, suggestion in self._SUGGESTIONS.items():
            if value == magic:
                ctx.report(
                    self, node,
                    f"magic literal {magic}: use {suggestion} from repro.units "
                    "so the unit and prefix are explicit",
                )
                return


@register_rule
class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls.

    A ``[]``/``{}``/``set()`` default is created once at definition time;
    mutation in one simulation run leaks into the next, which is both a
    classic bug and a determinism hazard (state depends on call history).
    """

    id = "RL006"
    name = "mutable-default"
    severity = Severity.ERROR
    description = "mutable default argument ([], {}, set(), ...) shared across calls"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "collections.defaultdict")

    def _is_mutable(self, node: ast.AST | None) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) and call_name(node) in self._MUTABLE_CALLS

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if self._is_mutable(default):
                where = getattr(node, "name", "<lambda>")
                ctx.report(
                    self, default,
                    f"mutable default in {where}(): evaluated once at def "
                    "time and shared across calls; use None and create inside",
                )


@register_rule
class NoPrintRule(Rule):
    """Library code must not ``print()``.

    Output belongs to the monitoring/export layer or
    :class:`repro.output.OutputWriter`, so callers can capture, redirect
    and test it — and so simulations stay silent when embedded.
    """

    id = "RL007"
    name = "no-print"
    severity = Severity.WARNING
    description = "print() in library code; route output through repro.output / monitoring export"
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.config.is_disabled("RL010"):
            # RL010 (output-writer) is a strict superset of this rule; when
            # it is enabled, reporting here would double-count every call.
            return
        if not ctx.in_library or ctx.matches_any(ctx.config.print_allowed):
            return
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(
                self, node,
                "print() in library code: use repro.output.OutputWriter or "
                "the monitoring export layer",
            )


@register_rule
class OutputWriterRule(Rule):
    """All output must flow through :class:`repro.output.OutputWriter`.

    A bare ``print()`` anywhere — library, experiments, tests — bypasses
    the sanctioned output layer, so it cannot be captured, redirected or
    silenced, and its text never reaches the rendered-results checksums in
    run manifests.  Allow-list specific files (or whole directories with a
    trailing ``/``) via ``output-allowed`` in ``[tool.repro-lint]``.
    """

    id = "RL010"
    name = "output-writer"
    severity = Severity.ERROR
    description = (
        "print() outside repro/output.py; route output through "
        "repro.output.OutputWriter"
    )
    node_types = (ast.Call,)

    def _allowed(self, ctx: LintContext) -> bool:
        entries = ctx.config.output_allowed
        if ctx.matches_any(tuple(e for e in entries if not e.endswith("/"))):
            return True
        slashed = f"/{ctx.posix}"
        return any(f"/{e}" in slashed for e in entries if e.endswith("/"))

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if self._allowed(ctx):
            return
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(
                self, node,
                "bare print(): use repro.output.OutputWriter so output can "
                "be captured, redirected and checksummed",
            )


@register_rule
class RawParallelismRule(Rule):
    """Parallelism must flow through :mod:`repro.parallel`.

    Raw ``multiprocessing`` / executor / ``os.fork`` use in library code
    bypasses the deterministic sweep runner, which is the only place that
    guarantees seed derivation, spawn-based isolation and seed-order
    merging — the properties that keep ``jobs=N`` byte-identical to
    serial execution.
    """

    id = "RL009"
    name = "raw-parallelism"
    severity = Severity.ERROR
    description = (
        "raw multiprocessing/executor/os.fork use outside repro/parallel.py; "
        "use repro.parallel.run_trials"
    )
    node_types = (ast.Call, ast.Import, ast.ImportFrom)

    _BANNED_MODULES = ("multiprocessing", "concurrent.futures")
    _BANNED_CALLS = frozenset(
        {
            "os.fork",
            "os.forkpty",
            "multiprocessing.Process",
            "multiprocessing.Pool",
            "concurrent.futures.ProcessPoolExecutor",
            "concurrent.futures.ThreadPoolExecutor",
            "futures.ProcessPoolExecutor",
            "futures.ThreadPoolExecutor",
            "ProcessPoolExecutor",
            "ThreadPoolExecutor",
        }
    )

    def _is_banned_module(self, module: str) -> bool:
        return any(
            module == banned or module.startswith(banned + ".")
            for banned in self._BANNED_MODULES
        )

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_library or ctx.matches_any(ctx.config.parallel_allowed):
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if self._is_banned_module(alias.name):
                    ctx.report(
                        self, node,
                        f"import of {alias.name!r}: fan work out through "
                        "repro.parallel.run_trials so results stay "
                        "deterministic and seed-ordered",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            if node.module is not None and self._is_banned_module(node.module):
                ctx.report(
                    self, node,
                    f"import from {node.module!r}: fan work out through "
                    "repro.parallel.run_trials so results stay "
                    "deterministic and seed-ordered",
                )
            return
        name = call_name(node)
        if name in self._BANNED_CALLS:
            ctx.report(
                self, node,
                f"call to {name}(): worker pools outside repro.parallel "
                "cannot guarantee seed-order merging; use run_trials",
            )


@register_rule
class SilentExceptRule(Rule):
    """Simulation errors must never vanish.

    A bare ``except:`` (or a handler that only ``pass``es) can hide
    :class:`~repro.errors.SimulationError` and even ``KeyboardInterrupt``,
    turning a corrupted run into a silently wrong figure.
    """

    id = "RL008"
    name = "silent-except"
    severity = Severity.ERROR
    description = "bare except: or exception handler that swallows errors in sim/runtime"
    node_types = (ast.ExceptHandler,)

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            or isinstance(stmt, ast.Continue)
            for stmt in handler.body
        )

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_packages(ctx.config.except_packages):
            return
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            ctx.report(
                self, node,
                "bare except: catches SystemExit/KeyboardInterrupt and hides "
                "simulation failures; name the exception types",
            )
        elif self._swallows(node):
            ctx.report(
                self, node,
                "exception handler swallows the error; re-raise, record it, "
                "or narrow the handled types",
            )
