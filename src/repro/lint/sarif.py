"""SARIF 2.1.0 export for lint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests to annotate pull requests.  The export is deterministic
by construction — findings and rule metadata are sorted, no timestamps
or absolute paths are emitted — so CI can assert that a warm-cache rerun
produces a byte-identical file.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.lint.findings import Finding, Severity
from repro.version import __version__

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF result levels for our severities
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_metadata(rule_ids: Iterable[str]) -> list[dict]:
    """Driver rule descriptors for every rule that produced a finding."""
    from repro.lint.engine import RULE_REGISTRY
    from repro.lint.flow.base import FLOW_RULE_REGISTRY

    registry: dict[str, type] = {**RULE_REGISTRY, **FLOW_RULE_REGISTRY}
    rules = []
    for rule_id in sorted(set(rule_ids)):
        cls = registry.get(rule_id)
        descriptor: dict = {"id": rule_id}
        if cls is not None:
            descriptor["name"] = cls.name
            descriptor["shortDescription"] = {"text": cls.description}
            descriptor["defaultConfiguration"] = {
                "level": _LEVELS.get(cls.severity, "warning")
            }
        rules.append(descriptor)
    return rules


def to_sarif(findings: Sequence[Finding]) -> dict:
    """Build the SARIF log object for a set of findings."""
    ordered = sorted(findings)
    rule_ids = [f.rule_id for f in ordered]
    rule_index = {rid: i for i, rid in enumerate(sorted(set(rule_ids)))}
    results = []
    for finding in ordered:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": _LEVELS.get(finding.severity, "warning"),
                "message": {"text": f"{finding.message} ({finding.rule_name})"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/hpas/repro",
                        "version": __version__,
                        "rules": _rule_metadata(rule_ids),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """Canonical (sorted-keys, newline-terminated) SARIF text."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True) + "\n"
