"""``repro.lint`` — an AST-based determinism & unit-safety analyzer.

The simulator's core contract — every figure and table regenerates
identically on every run — rests on conventions that no runtime check can
enforce: all randomness flows through :mod:`repro.sim.rng`, all quantities
are SI base units per :mod:`repro.units`, and simulation code never reads
wall-clock time or iterates unordered collections into ordered decisions.
This package makes the contract machine-checked.

Public surface::

    from repro.lint import LintEngine, LintConfig, Finding, lint_paths

    findings = lint_paths(["src"], LintConfig())
    for f in findings:
        print(f.format_text())     # path:line:col: RLxxx [severity] message

Per-file rules are registered in :mod:`repro.lint.rules` (RL001–RL010);
whole-program dataflow rules (RL011–RL016) live in
:mod:`repro.lint.flow` and run via ``repro lint --flow``, which adds an
incremental sha256-keyed cache, a SARIF 2.1.0 exporter
(:mod:`repro.lint.sarif`) and baseline support
(:mod:`repro.lint.baseline`).  The CLI entry point is
``python -m repro lint [paths]``.
"""

from __future__ import annotations

from repro.lint.baseline import apply_baseline, load_baseline, save_baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.sarif import render_sarif, to_sarif
from repro.lint.engine import (
    RULE_REGISTRY,
    LintEngine,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.lint.findings import Finding, Severity

# Importing the rules module populates RULE_REGISTRY.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Finding",
    "Severity",
    "LintConfig",
    "load_config",
    "LintEngine",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "to_sarif",
    "render_sarif",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
]
