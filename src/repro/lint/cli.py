"""``python -m repro lint`` — run the determinism linter from the shell.

Examples::

    python -m repro lint src/                  # text report, exit 1 on findings
    python -m repro lint src/ tests/ --format json
    python -m repro lint src/ --flow --stats   # + whole-program rules RL011+
    python -m repro lint src/ --flow --sarif lint.sarif \
        --baseline LINT_baseline.json          # CI: only new findings fail
    python -m repro lint --list-rules          # registry with rationales

Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
configuration errors — the convention CI gates expect.

``--flow`` adds the whole-program dataflow rules (RL011–RL016) and an
incremental cache: warm re-runs re-analyze only changed files and their
reverse dependencies (``--stats`` prints the hit rate).  ``--baseline``
filters out pre-existing findings recorded with ``--write-baseline``;
``--sarif`` writes a SARIF 2.1.0 log for GitHub code scanning.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigError
from repro.lint.baseline import apply_baseline, load_baseline, save_baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import RULE_REGISTRY, LintEngine
from repro.lint.findings import Finding
from repro.lint.sarif import render_sarif
from repro.output import OutputWriter

JSON_SCHEMA_VERSION = 2

DEFAULT_CACHE = ".repro_lint_cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & unit-safety analyzer for the repro tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="DIR",
        help="directory to search for pyproject.toml (default: first lint path)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and use built-in defaults",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule id for this run (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="run the whole-program dataflow rules (RL011+) with the "
        "incremental cache",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a summary block (findings per rule, files analyzed, "
        "cache hit rate); silenced by --quiet",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print findings only — no summary line and no --stats block",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="also write a SARIF 2.1.0 log (post-baseline findings)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in this baseline file; only new "
        "findings are reported",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE,
        metavar="FILE",
        help=f"incremental cache file for --flow (default {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental cache",
    )
    return parser


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    else:
        start = args.config if args.config is not None else args.paths[0]
        config = load_config(start)
    if args.disable:
        config = LintConfig(
            **{
                **{f: getattr(config, f) for f in config.__dataclass_fields__},
                "disable": tuple(dict.fromkeys([*config.disable, *args.disable])),
            }
        )
    return config


def _render_text(
    findings: list[Finding], n_files: int, out: OutputWriter, quiet: bool
) -> None:
    for finding in findings:
        out.line(finding.format_text())
    if quiet:
        return
    noun = "file" if n_files == 1 else "files"
    if findings:
        out.line(f"{len(findings)} finding(s) in {n_files} {noun}")
    else:
        out.line(f"clean: 0 findings in {n_files} {noun}")


def _render_json(
    findings: list[Finding], n_files: int, out: OutputWriter, stats: dict | None
) -> None:
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "files": n_files,
            "findings": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    if stats is not None:
        payload["stats"] = stats
    out.line(json.dumps(payload, indent=2, sort_keys=True))


def _render_stats(
    findings: list[Finding], report, out: OutputWriter
) -> None:
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    out.line("-- lint stats --")
    out.line(f"files analyzed:  {len(report.analyzed)} of {len(report.files)}")
    out.line(f"cache hits:      {len(report.cached)} ({report.cache_hit_rate:.0%})")
    out.line(f"findings:        {len(findings)}")
    for rule_id, count in sorted(by_rule.items()):
        out.line(f"  {rule_id}: {count}")


def _render_rules(out: OutputWriter) -> None:
    from repro.lint.flow.base import FLOW_RULE_REGISTRY

    out.line(f"{'id':6s} {'name':20s} {'severity':8s} description")
    merged = {**RULE_REGISTRY, **FLOW_RULE_REGISTRY}
    for rule_id, cls in sorted(merged.items()):
        scope = "flow" if rule_id in FLOW_RULE_REGISTRY else "file"
        out.line(
            f"{rule_id:6s} {cls.name:20s} {cls.severity.value:8s} "
            f"[{scope}] {cls.description}"
        )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    out = OutputWriter()

    if args.list_rules:
        _render_rules(out)
        return 0

    report = None
    try:
        config = _resolve_config(args)
        if args.flow:
            from repro.lint.flow.analyzer import analyze_paths

            cache_path = None if args.no_cache else Path(args.cache)
            report = analyze_paths(args.paths, config, cache_path=cache_path)
            findings = report.findings
            n_files = len(report.files)
        else:
            engine = LintEngine(config)
            files = engine.iter_files(args.paths)
            findings = sorted(engine.lint_paths(files))
            n_files = len(files)

        if args.write_baseline is not None:
            path = save_baseline(findings, args.write_baseline)
            if not args.quiet:
                out.line(f"baseline written: {path} ({len(findings)} finding(s))")
            return 0

        if args.baseline is not None:
            findings = apply_baseline(findings, load_baseline(args.baseline))
    except ConfigError as exc:
        sys.stderr.write(f"repro lint: error: {exc}\n")
        return 2

    if args.sarif is not None:
        Path(args.sarif).write_text(render_sarif(findings), encoding="utf-8")

    stats_payload = None
    if report is not None:
        stats_payload = {
            "files": len(report.files),
            "analyzed": len(report.analyzed),
            "cached": len(report.cached),
            "cache_hit_rate": round(report.cache_hit_rate, 4),
        }
    if args.format == "json":
        _render_json(
            findings, n_files, out, stats_payload if args.stats else None
        )
    else:
        _render_text(findings, n_files, out, args.quiet)
        if args.stats and not args.quiet:
            if report is not None:
                _render_stats(findings, report, out)
            else:
                by_rule: dict[str, int] = {}
                for finding in findings:
                    by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
                out.line("-- lint stats --")
                out.line(f"files analyzed:  {n_files} of {n_files}")
                out.line(f"findings:        {len(findings)}")
                for rule_id, count in sorted(by_rule.items()):
                    out.line(f"  {rule_id}: {count}")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
