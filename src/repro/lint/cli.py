"""``python -m repro lint`` — run the determinism linter from the shell.

Examples::

    python -m repro lint src/                  # text report, exit 1 on findings
    python -m repro lint src/ tests/ --format json
    python -m repro lint --list-rules          # registry with rationales

Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
configuration errors — the convention CI gates expect.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ConfigError
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import RULE_REGISTRY, LintEngine
from repro.lint.findings import Finding
from repro.output import OutputWriter

JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & unit-safety analyzer for the repro tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="DIR",
        help="directory to search for pyproject.toml (default: first lint path)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and use built-in defaults",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule id for this run (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    else:
        start = args.config if args.config is not None else args.paths[0]
        config = load_config(start)
    if args.disable:
        config = LintConfig(
            **{
                **{f: getattr(config, f) for f in config.__dataclass_fields__},
                "disable": tuple(dict.fromkeys([*config.disable, *args.disable])),
            }
        )
    return config


def _render_text(findings: list[Finding], n_files: int, out: OutputWriter) -> None:
    for finding in findings:
        out.line(finding.format_text())
    noun = "file" if n_files == 1 else "files"
    if findings:
        out.line(f"{len(findings)} finding(s) in {n_files} {noun}")
    else:
        out.line(f"clean: 0 findings in {n_files} {noun}")


def _render_json(findings: list[Finding], n_files: int, out: OutputWriter) -> None:
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "files": n_files,
            "findings": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    out.line(json.dumps(payload, indent=2, sort_keys=True))


def _render_rules(out: OutputWriter) -> None:
    out.line(f"{'id':6s} {'name':16s} {'severity':8s} description")
    for rule_id, cls in sorted(RULE_REGISTRY.items()):
        out.line(
            f"{rule_id:6s} {cls.name:16s} {cls.severity.value:8s} {cls.description}"
        )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    out = OutputWriter()

    if args.list_rules:
        _render_rules(out)
        return 0

    try:
        config = _resolve_config(args)
        engine = LintEngine(config)
        files = engine.iter_files(args.paths)
        findings = sorted(engine.lint_paths(files))
    except ConfigError as exc:
        sys.stderr.write(f"repro lint: error: {exc}\n")
        return 2

    if args.format == "json":
        _render_json(findings, len(files), out)
    else:
        _render_text(findings, len(files), out)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
