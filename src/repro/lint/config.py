"""Linter configuration, loaded from ``[tool.repro-lint]`` in pyproject.toml.

All keys are optional; the defaults below encode this repository's layout.
TOML keys use dashes (``wallclock-packages``) and map onto the dataclass
fields with underscores.  Unknown keys are a :class:`ConfigError` so typos
cannot silently disable a rule.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigError

CONFIG_TABLE = "repro-lint"


@dataclass(frozen=True)
class LintConfig:
    """Tunable scope of the determinism rules.

    ``*_packages`` fields name sub-packages of ``repro`` (matched as path
    components, e.g. ``"sim"`` matches ``src/repro/sim/engine.py``);
    ``*_allowed`` fields are path suffixes that exempt specific files.
    """

    # Rule ids disabled everywhere (e.g. ["RL005"]).
    disable: tuple[str, ...] = ()
    # Files allowed to construct raw RNGs (RL001).
    rng_allowed: tuple[str, ...] = ("sim/rng.py",)
    # Packages where wall-clock reads are forbidden (RL002).
    wallclock_packages: tuple[str, ...] = ("sim", "core", "apps", "experiments")
    # Packages where unordered iteration is forbidden (RL003).
    ordering_packages: tuple[str, ...] = ("sim", "scheduling")
    # Packages where bare/swallowed excepts are forbidden (RL008).
    except_packages: tuple[str, ...] = ("sim", "runtime")
    # Files allowed to use raw magic unit literals (RL005).
    units_allowed: tuple[str, ...] = ("units.py",)
    # Library files allowed to call print() (RL007); empty by design —
    # output goes through repro.output or the monitoring export layer.
    print_allowed: tuple[str, ...] = ()
    # Files allowed to read the wall clock inside wallclock packages
    # (RL002): observability-only timers that never feed simulated state.
    wallclock_allowed: tuple[str, ...] = ("sim/stats.py",)
    # Files allowed to use process pools (RL009): the deterministic
    # parallel runner is the only sanctioned parallelism entry point.
    parallel_allowed: tuple[str, ...] = ("repro/parallel.py",)
    # Files allowed to call print() anywhere in the tree (RL010): by
    # default only the sanctioned output layer itself.
    output_allowed: tuple[str, ...] = ("repro/output.py",)

    # -- whole-program flow analysis (RL011–RL016, `repro lint --flow`) --

    # Blessed RNG factory names (RL011): values returned by these calls
    # are seed-derived and may flow anywhere.
    flow_rng_factories: tuple[str, ...] = ("make_rng", "spawn_rng")
    # Packages whose functions are RNG provenance sinks (RL011): a raw
    # generator must never reach them through any call chain.
    flow_rng_sinks: tuple[str, ...] = (
        "sim", "cluster", "network", "storage", "faults", "core",
    )
    # Packages whose functions are wall-clock provenance sinks (RL012).
    flow_time_sinks: tuple[str, ...] = ("sim",)
    # Memoized solver entry points (RL013), matched as qualname suffixes
    # ("Class.method"); their transitive same-class reads are checked
    # against the cache key.
    flow_memo_functions: tuple[str, ...] = (
        "FlowSolver.solve", "ClusterRateModel._solve_node",
    )
    # Instance attributes a memoized solve may read even though they are
    # mutated at runtime (RL013): observability counters, the attached
    # checker hook and the memo dict itself never change the result.
    flow_memo_state_allowed: tuple[str, ...] = ("stats", "check", "obs", "_solve_cache")
    # Instance attributes whose contents are content-addressed by an
    # interned token or array fingerprint that *does* appear in the cache
    # key (RL013): the attribute and the key token are written together,
    # so a memo hit implies identical contents.  The linter trusts the
    # declared pairing; the array-vs-object differential oracle enforces
    # it at runtime.
    flow_memo_derived_state: tuple[str, ...] = ()
    # Optional hook attributes that must be None-guarded (RL015).
    flow_guard_hooks: tuple[str, ...] = ("obs", "check")
    # Packages where the zero-cost guard pattern is mandatory (RL015).
    flow_guard_packages: tuple[str, ...] = (
        "sim", "cluster", "network", "storage", "runtime", "apps",
    )
    # Sanctioned parallel entry points (RL014): functions handed to these
    # become spawn-boundary worker roots checked for shared-state writes.
    flow_worker_entrypoints: tuple[str, ...] = ("run_trials",)

    def __post_init__(self) -> None:
        for rule_id in self.disable:
            if not isinstance(rule_id, str):
                raise ConfigError(f"disable entries must be rule ids, got {rule_id!r}")

    def is_disabled(self, rule_id: str) -> bool:
        return rule_id in self.disable

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "LintConfig":
        """Build a config from a TOML table, rejecting unknown keys."""
        known = {f.name: f for f in fields(cls)}
        kwargs: dict[str, Any] = {}
        for key, value in mapping.items():
            name = key.replace("-", "_")
            if name not in known:
                raise ConfigError(
                    f"unknown [tool.{CONFIG_TABLE}] key {key!r} "
                    f"(known: {', '.join(sorted(k.replace('_', '-') for k in known))})"
                )
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise ConfigError(f"[tool.{CONFIG_TABLE}] {key} must be a list of strings")
            kwargs[name] = tuple(value)
        return cls(**kwargs)


def find_pyproject(start: Path | str = ".") -> Path | None:
    """Walk up from ``start`` to the first directory holding pyproject.toml."""
    directory = Path(start).resolve()
    if directory.is_file():
        directory = directory.parent
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Path | str = ".") -> LintConfig:
    """Load ``[tool.repro-lint]`` from the nearest pyproject.toml.

    Missing file or missing table both yield the defaults, so the linter
    works on any tree, configured or not.
    """
    pyproject = find_pyproject(start)
    if pyproject is None:
        return LintConfig()
    try:
        data = tomllib.loads(pyproject.read_text())
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"{pyproject}: invalid TOML: {exc}") from exc
    table = data.get("tool", {}).get(CONFIG_TABLE, {})
    return LintConfig.from_mapping(table)
