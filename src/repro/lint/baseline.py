"""Baseline files: pre-existing findings that don't block, new ones do.

Rolling a new rule out over a mature tree always surfaces historical
findings.  Instead of blanket-disabling the rule (losing protection for
new code) or suppressing every site (noisy diffs), a *baseline* records
the current findings; ``repro lint --baseline LINT_baseline.json`` then
reports only findings **not** in the baseline, so CI fails on
regressions while the backlog is burned down deliberately
(``make lint-baseline`` regenerates the file on purpose).

Matching is by ``(path, rule_id, message)`` with multiplicity — line
numbers are deliberately excluded so unrelated edits shifting code up or
down don't resurrect baselined findings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.errors import ConfigError
from repro.lint.findings import Finding

BASELINE_VERSION = 1


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.path.replace("\\", "/"), finding.rule_id, finding.message)


def save_baseline(findings: Sequence[Finding], path: Path | str) -> Path:
    """Write the canonical baseline for the given findings."""
    counts: dict[tuple[str, str, str], int] = {}
    for finding in sorted(findings):
        counts[_key(finding)] = counts.get(_key(finding), 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "rule_id": r, "message": m, "count": n}
            for (p, r, m), n in sorted(counts.items())
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_baseline(path: Path | str) -> dict[tuple[str, str, str], int]:
    """Load a baseline into a multiset of finding keys."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") from exc
    if data.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"baseline {path}: unsupported version {data.get('version')!r}"
        )
    counts: dict[tuple[str, str, str], int] = {}
    for entry in data.get("findings", []):
        key = (entry["path"], entry["rule_id"], entry["message"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def apply_baseline(
    findings: Sequence[Finding], baseline: dict[tuple[str, str, str], int]
) -> list[Finding]:
    """Findings not covered by the baseline (respecting multiplicity)."""
    remaining = dict(baseline)
    fresh: list[Finding] = []
    for finding in sorted(findings):
        key = _key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
