"""Finding and severity types shared by the engine, rules and CLI."""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break the determinism contract outright (hidden
    randomness, wall-clock reads, swallowed exceptions); ``WARNING``
    findings are strong smells that occasionally have legitimate uses and
    may be suppressed with a justifying comment.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Ordering is (path, line, col, rule_id) so reports are stable across
    runs and platforms — the linter holds itself to the determinism
    contract it enforces.
    """

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    severity: Severity
    message: str

    def format_text(self) -> str:
        """``path:line:col: RLxxx [severity] message (rule-name)``."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
            f"[{self.severity.value}] {self.message} ({self.rule_name})"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation (severity as its string value)."""
        data = asdict(self)
        data["severity"] = self.severity.value
        return data
