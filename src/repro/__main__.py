"""``python -m repro`` entry point (HPAS-style CLI)."""

from repro.cli import main

raise SystemExit(main())
