"""GOAL-like trace schema with a canonical JSONL serialization.

A trace is an application's execution skeleton, machine-readable and
replayable: per-rank *records* (compute / send / recv / collective / io /
sleep) carrying the engine's resource-demand vocabulary, linked by
explicit cross-rank dependency edges, plus a :class:`TraceMeta` header
that pins the machine, the rank placement, and the spawn times.  The
design follows the GOAL trace family used by LogGOPSim/ATLAHS: local
operations are ordered implicitly per rank (ascending record id), and
only cross-rank happens-before edges are spelled out.

Serialization is canonical so traces can be fingerprinted and diffed:

* one JSON object per line — the meta header, then every record in
  ascending-id order, then a trailer;
* sorted keys, compact separators, exact float round-trip (``repr``);
* the trailer carries the record count and the sha256 of every byte
  above it, so a torn tail is detected as a
  :class:`~repro.errors.TraceFormatError`, never silently replayed.

Record ids encode the *arrival order* of the recorded run: ids are
assigned globally in yield order, so sorting by id reproduces the exact
sequence in which same-timestamp operations reached the engine — the
property the replay engine relies on for byte-identical wakeup order.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import TraceFormatError
from repro.sim.process import CACHE_LEVELS

#: schema version written into every trace header
TRACE_VERSION = 1

#: record kinds: segment-backed work, pure dependency waits, and sleeps
RECORD_KINDS = ("collective", "compute", "io", "recv", "send", "sleep")

#: kinds whose replay is a pure dependency wait (no engine payload)
WAIT_KINDS = frozenset({"recv", "collective"})

#: machines a trace may target (the paper's two systems)
TRACE_MACHINES = ("chameleon", "voltrino")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TraceFormatError(message)


def _finite(value: float, what: str, minimum: float = 0.0) -> float:
    value = float(value)
    _require(math.isfinite(value), f"{what} must be finite, got {value!r}")
    _require(value >= minimum, f"{what} must be >= {minimum}, got {value!r}")
    return value


@dataclass(frozen=True)
class TraceRecord:
    """One operation of one rank.

    Attributes
    ----------
    id:
        Globally unique positive integer; ascending id is both the
        canonical serialization order and, within a rank, program order.
    kind:
        One of :data:`RECORD_KINDS`.  ``recv`` and ``collective`` replay
        as pure dependency waits; the others carry an engine payload.
    rank:
        Owning rank (index into the meta's placement).
    deps:
        Cross-rank happens-before edges: positive entries name earlier
        record ids (``dep < id``, so the graph is acyclic by
        construction); ``-(r + 1)`` means "rank ``r`` has started".
    work:
        Segment work (seconds at full speed), or the sleep duration.
    cpu / cache / cache_intensity / mpki_base / mpki_extra /
    miss_cpi_penalty / mem_bw / mem_bw_extra / ips:
        The :class:`~repro.sim.process.Segment` demand vector; ``cache``
        is the footprint as a sorted ``(level, bytes)`` tuple.
    flows:
        ``(dst, rate)`` network demands.  ``dst`` is either a literal
        node name (recorded traces) or ``"r<k>"``, a rank reference the
        replay engine resolves through the placement (generated traces).
    io:
        ``(fs, write_bw, read_bw, meta_ops)`` filesystem demand, or None.
    counters:
        Body-side ``(key, delta)`` counter writes applied (via
        ``add_counter``) when this record becomes the rank's current
        record, before its dependencies are awaited.  Deltas — not
        absolutes — because the engine's rate models accrue into the
        same counters between records; replaying the exact recorded
        deltas at the same points reproduces the native run's
        interleaved floating-point sum bit-for-bit on both backends.
    mem:
        Absolute resident-set bytes to hold from this record on, or None
        for "unchanged" (the replay adjusts the node's memory ledger;
        nothing else accrues into the ledger, so absolute is exact).
    label:
        Free-form tag, forwarded to the replayed segment for tracing.
    """

    id: int
    kind: str
    rank: int
    deps: tuple[int, ...] = ()
    work: float = 0.0
    cpu: float = 1.0
    cache: tuple[tuple[str, float], ...] = ()
    cache_intensity: float = 0.0
    mpki_base: float = 0.0
    mpki_extra: float = 0.0
    miss_cpi_penalty: float = 0.0
    mem_bw: float = 0.0
    mem_bw_extra: float = 0.0
    ips: float = 0.0
    flows: tuple[tuple[str, float], ...] = ()
    io: tuple[str, float, float, float] | None = None
    counters: tuple[tuple[str, float], ...] = ()
    mem: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        # Canonicalize numeric types at construction: recorders hand in
        # whatever the workload carried (ints for byte counts, numpy
        # scalars from rate math), but the serialization must not depend
        # on that — ``2097152`` and ``2097152.0`` are equal in Python yet
        # different JSON bytes, which would break the sha256 round trip.
        object.__setattr__(self, "id", int(self.id))
        object.__setattr__(self, "rank", int(self.rank))
        object.__setattr__(self, "deps", tuple(sorted(int(d) for d in self.deps)))
        object.__setattr__(
            self,
            "cache",
            tuple(sorted((str(level), float(size)) for level, size in self.cache)),
        )
        object.__setattr__(
            self, "flows", tuple((str(dst), float(rate)) for dst, rate in self.flows)
        )
        object.__setattr__(
            self,
            "counters",
            tuple(sorted((str(k), float(v)) for k, v in self.counters)),
        )
        for name in (
            "work",
            "cpu",
            "cache_intensity",
            "mpki_base",
            "mpki_extra",
            "miss_cpi_penalty",
            "mem_bw",
            "mem_bw_extra",
            "ips",
        ):
            object.__setattr__(self, name, float(getattr(self, name)))
        if self.io is not None:
            fs, write_bw, read_bw, meta_ops = self.io
            object.__setattr__(
                self,
                "io",
                (str(fs), float(write_bw), float(read_bw), float(meta_ops)),
            )
        if self.mem is not None:
            object.__setattr__(self, "mem", float(self.mem))

    def validate(self, ranks: int) -> None:
        """Field-level validation (the trace validates the edges)."""
        _require(self.id > 0, f"record id must be positive, got {self.id}")
        _require(
            self.kind in RECORD_KINDS,
            f"record {self.id}: unknown kind {self.kind!r}",
        )
        _require(
            0 <= self.rank < ranks,
            f"record {self.id}: rank {self.rank} out of range [0, {ranks})",
        )
        for dep in self.deps:
            if dep < 0:
                _require(
                    -dep - 1 < ranks,
                    f"record {self.id}: start-dep {dep} names no rank",
                )
            else:
                _require(
                    0 < dep < self.id,
                    f"record {self.id}: dep {dep} must name an earlier record",
                )
        _finite(self.work, f"record {self.id}: work")
        _require(
            0.0 <= float(self.cpu) <= 1.0,
            f"record {self.id}: cpu must be in [0, 1], got {self.cpu!r}",
        )
        for name in (
            "cache_intensity",
            "mpki_base",
            "mpki_extra",
            "miss_cpi_penalty",
            "mem_bw",
            "mem_bw_extra",
            "ips",
        ):
            _finite(getattr(self, name), f"record {self.id}: {name}")
        for level, size in self.cache:
            _require(
                level in CACHE_LEVELS,
                f"record {self.id}: unknown cache level {level!r}",
            )
            _finite(size, f"record {self.id}: cache[{level}]")
        for dst, rate in self.flows:
            _require(
                bool(dst),
                f"record {self.id}: flow destination must be non-empty",
            )
            _finite(rate, f"record {self.id}: flow rate to {dst!r}")
        if self.io is not None:
            fs, write_bw, read_bw, meta_ops = self.io
            _require(bool(fs), f"record {self.id}: io filesystem must be named")
            _finite(write_bw, f"record {self.id}: io write_bw")
            _finite(read_bw, f"record {self.id}: io read_bw")
            _finite(meta_ops, f"record {self.id}: io meta_ops")
        for key, value in self.counters:
            _require(bool(key), f"record {self.id}: counter key must be non-empty")
            _finite(value, f"record {self.id}: counter {key!r}", minimum=-math.inf)
        if self.mem is not None:
            _finite(self.mem, f"record {self.id}: mem")

    def to_json(self) -> dict[str, object]:
        """Stable dict form (tuples become lists; None io/mem omitted)."""
        data: dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "rank": self.rank,
            "deps": list(self.deps),
            "work": self.work,
            "cpu": self.cpu,
            "cache": [[level, size] for level, size in self.cache],
            "cache_intensity": self.cache_intensity,
            "mpki_base": self.mpki_base,
            "mpki_extra": self.mpki_extra,
            "miss_cpi_penalty": self.miss_cpi_penalty,
            "mem_bw": self.mem_bw,
            "mem_bw_extra": self.mem_bw_extra,
            "ips": self.ips,
            "flows": [[dst, rate] for dst, rate in self.flows],
            "io": None if self.io is None else list(self.io),
            "counters": [[key, value] for key, value in self.counters],
            "mem": self.mem,
            "label": self.label,
        }
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "TraceRecord":
        try:
            io_raw = data.get("io")
            io = None
            if io_raw is not None:
                fs, write_bw, read_bw, meta_ops = io_raw  # type: ignore[misc]
                io = (str(fs), float(write_bw), float(read_bw), float(meta_ops))
            return cls(
                id=int(data["id"]),  # type: ignore[arg-type]
                kind=str(data["kind"]),
                rank=int(data["rank"]),  # type: ignore[arg-type]
                deps=tuple(int(d) for d in data.get("deps", ())),  # type: ignore[union-attr]
                work=float(data.get("work", 0.0)),  # type: ignore[arg-type]
                cpu=float(data.get("cpu", 1.0)),  # type: ignore[arg-type]
                cache=tuple(
                    (str(level), float(size))
                    for level, size in data.get("cache", ())  # type: ignore[union-attr]
                ),
                cache_intensity=float(data.get("cache_intensity", 0.0)),  # type: ignore[arg-type]
                mpki_base=float(data.get("mpki_base", 0.0)),  # type: ignore[arg-type]
                mpki_extra=float(data.get("mpki_extra", 0.0)),  # type: ignore[arg-type]
                miss_cpi_penalty=float(data.get("miss_cpi_penalty", 0.0)),  # type: ignore[arg-type]
                mem_bw=float(data.get("mem_bw", 0.0)),  # type: ignore[arg-type]
                mem_bw_extra=float(data.get("mem_bw_extra", 0.0)),  # type: ignore[arg-type]
                ips=float(data.get("ips", 0.0)),  # type: ignore[arg-type]
                flows=tuple(
                    (str(dst), float(rate))
                    for dst, rate in data.get("flows", ())  # type: ignore[union-attr]
                ),
                io=io,
                counters=tuple(
                    (str(key), float(value))
                    for key, value in data.get("counters", ())  # type: ignore[union-attr]
                ),
                mem=None if data.get("mem") is None else float(data["mem"]),  # type: ignore[arg-type]
                label=str(data.get("label", "")),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise TraceFormatError(f"malformed trace record: {err}") from err


@dataclass(frozen=True)
class TraceMeta:
    """Trace header: everything replay needs to rebuild the stage.

    ``tickers`` lists the recurring engine timers that were active in the
    recorded run as ``(interval, start, end)`` triples (``end`` None for
    unbounded).  Timers never mutate simulation state, but their firing
    times are floating-point accrual boundaries; replay re-installs
    no-op timers on the same schedule so counter integration sums in the
    exact same order.  ``ran_until`` is the simulated instant the
    recording was finalized at (0 for generated traces, which replay to
    completion instead).
    """

    name: str
    machine: str
    nodes: int
    ranks: int
    placement: tuple[tuple[str, int], ...]
    rank_names: tuple[str, ...]
    starts: tuple[float, ...]
    filesystems: tuple[str, ...] = ()
    tickers: tuple[tuple[float, float, float | None], ...] = ()
    ran_until: float = 0.0
    seed: int | None = None
    origin: str = "generated"
    version: int = TRACE_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "placement", tuple((str(n), int(c)) for n, c in self.placement)
        )
        object.__setattr__(self, "rank_names", tuple(self.rank_names))
        object.__setattr__(self, "starts", tuple(float(s) for s in self.starts))
        object.__setattr__(self, "filesystems", tuple(sorted(self.filesystems)))
        object.__setattr__(
            self,
            "tickers",
            tuple(
                (float(i), float(s), None if e is None else float(e))
                for i, s, e in self.tickers
            ),
        )

    def validate(self) -> None:
        _require(self.version == TRACE_VERSION, f"unsupported trace version {self.version}")
        _require(bool(self.name), "trace name must be non-empty")
        _require(
            self.machine in TRACE_MACHINES,
            f"unknown machine {self.machine!r} (known: {', '.join(TRACE_MACHINES)})",
        )
        _require(self.nodes >= 1, "trace needs at least one node")
        _require(self.ranks >= 1, "trace needs at least one rank")
        for label, seq in (
            ("placement", self.placement),
            ("rank_names", self.rank_names),
            ("starts", self.starts),
        ):
            _require(
                len(seq) == self.ranks,
                f"meta {label} has {len(seq)} entries for {self.ranks} ranks",
            )
        for node, core in self.placement:
            _require(bool(node), "placement node names must be non-empty")
            _require(core >= 0, f"placement core {core} must be >= 0")
        for start in self.starts:
            _finite(start, "rank start time")
        for interval, start, end in self.tickers:
            _require(interval > 0, f"ticker interval must be > 0, got {interval!r}")
            _finite(start, "ticker start")
            if end is not None:
                _finite(end, "ticker end")
        _finite(self.ran_until, "ran_until")

    def to_json(self) -> dict[str, object]:
        return {
            "version": self.version,
            "name": self.name,
            "machine": self.machine,
            "nodes": self.nodes,
            "ranks": self.ranks,
            "placement": [[node, core] for node, core in self.placement],
            "rank_names": list(self.rank_names),
            "starts": list(self.starts),
            "filesystems": list(self.filesystems),
            "tickers": [[i, s, e] for i, s, e in self.tickers],
            "ran_until": self.ran_until,
            "seed": self.seed,
            "origin": self.origin,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "TraceMeta":
        try:
            return cls(
                name=str(data["name"]),
                machine=str(data["machine"]),
                nodes=int(data["nodes"]),  # type: ignore[arg-type]
                ranks=int(data["ranks"]),  # type: ignore[arg-type]
                placement=tuple(
                    (str(node), int(core)) for node, core in data["placement"]  # type: ignore[union-attr]
                ),
                rank_names=tuple(str(n) for n in data["rank_names"]),  # type: ignore[union-attr]
                starts=tuple(float(s) for s in data["starts"]),  # type: ignore[union-attr]
                filesystems=tuple(str(f) for f in data.get("filesystems", ())),  # type: ignore[union-attr]
                tickers=tuple(
                    (float(i), float(s), None if e is None else float(e))
                    for i, s, e in data.get("tickers", ())  # type: ignore[union-attr]
                ),
                ran_until=float(data.get("ran_until", 0.0)),  # type: ignore[arg-type]
                seed=None if data.get("seed") is None else int(data["seed"]),  # type: ignore[arg-type]
                origin=str(data.get("origin", "generated")),
                version=int(data.get("version", TRACE_VERSION)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as err:
            raise TraceFormatError(f"malformed trace meta: {err}") from err


@dataclass(frozen=True)
class Trace:
    """A complete trace: header plus records in canonical (id) order.

    Construction normalizes: records are sorted by id regardless of the
    order they were emitted in, so two generators producing the same
    record *set* serialize byte-identically.
    """

    meta: TraceMeta
    records: tuple[TraceRecord, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "records", tuple(sorted(self.records, key=lambda r: r.id))
        )

    def validate(self) -> "Trace":
        """Full validation: meta, every record, and the dependency graph.

        Returns self so call sites can chain ``load(...).validate()``.
        """
        self.meta.validate()
        seen: set[int] = set()
        for record in self.records:
            _require(
                record.id not in seen, f"duplicate record id {record.id}"
            )
            seen.add(record.id)
            record.validate(self.meta.ranks)
            for dep in record.deps:
                if dep > 0:
                    _require(
                        dep in seen,
                        f"record {record.id}: dep {dep} names no record",
                    )
        return self

    @property
    def sha256(self) -> str:
        """Fingerprint over the canonical meta + record lines."""
        digest = hashlib.sha256()
        for line in self._body_lines():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def per_rank(self) -> list[list[TraceRecord]]:
        """Records grouped by rank, in program (ascending-id) order."""
        out: list[list[TraceRecord]] = [[] for _ in range(self.meta.ranks)]
        for record in self.records:
            out[record.rank].append(record)
        return out

    def _body_lines(self) -> Iterable[str]:
        yield _canonical({"meta": self.meta.to_json()})
        for record in self.records:
            yield _canonical({"record": record.to_json()})


def _canonical(payload: Mapping[str, object]) -> str:
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as err:
        raise TraceFormatError(f"non-finite value in trace: {err}") from err


def dumps(trace: Trace) -> str:
    """Canonical JSONL text: meta line, record lines, sha256 trailer."""
    lines = list(trace._body_lines())
    trailer = _canonical({"records": len(trace.records), "sha256": trace.sha256})
    return "\n".join([*lines, trailer]) + "\n"


def loads(text: str) -> Trace:
    """Parse canonical JSONL; torn or tampered input is a typed error."""
    lines = [line for line in text.split("\n") if line.strip()]
    _require(len(lines) >= 2, "trace must have a meta line and a trailer")
    parsed: list[Mapping[str, object]] = []
    for index, line in enumerate(lines):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            raise TraceFormatError(
                f"trace line {index + 1} is not valid JSON (torn file?): {err}"
            ) from err
        if not isinstance(obj, dict):
            raise TraceFormatError(f"trace line {index + 1} is not an object")
        parsed.append(obj)
    trailer = parsed[-1]
    _require(
        "records" in trailer and "sha256" in trailer,
        "trace trailer missing (torn tail?)",
    )
    _require("meta" in parsed[0], "first trace line must be the meta header")
    meta = TraceMeta.from_json(parsed[0]["meta"])  # type: ignore[arg-type]
    records = []
    for index, obj in enumerate(parsed[1:-1]):
        _require(
            "record" in obj, f"trace line {index + 2} is not a record"
        )
        records.append(TraceRecord.from_json(obj["record"]))  # type: ignore[arg-type]
    trace = Trace(meta=meta, records=tuple(records))
    _require(
        int(trailer["records"]) == len(records),  # type: ignore[arg-type]
        f"trailer promises {trailer['records']} records, found {len(records)} "
        "(torn tail?)",
    )
    _require(
        str(trailer["sha256"]) == trace.sha256,
        "trace sha256 mismatch: file was modified or torn",
    )
    return trace


def dump_trace(trace: Trace, path: str | Path) -> Path:
    """Write the canonical JSONL to ``path`` (atomic rename)."""
    from repro._atomic import atomic_write_text

    path = Path(path)
    atomic_write_text(path, dumps(trace))
    return path


def load_trace(path: str | Path) -> Trace:
    """Read and parse a canonical JSONL trace file."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as err:
        raise TraceFormatError(f"cannot read trace {path}: {err}") from err
    return loads(text)


def with_records(trace: Trace, records: Iterable[TraceRecord]) -> Trace:
    """A copy of ``trace`` with its record set replaced (test surgery)."""
    return replace(trace, records=tuple(records))
