"""Trace recording: capture a native run into a replayable trace.

:class:`TraceRecorder` attaches to a cluster's simulator through the
engine's ``record`` hook (the same pay-for-what-you-use contract as
``obs``/``check``) and transparently wraps every spawned process body.
The wrapper forwards each yielded item to the engine unchanged — the
recorded run *is* the native run — while writing one
:class:`~repro.traces.schema.TraceRecord` per yield:

* ``Segment`` → a ``compute``/``send``/``io`` record carrying the full
  demand vector (ids assigned in global yield order);
* ``Sleep`` → a ``sleep`` record;
* ``Wait`` → a ``collective`` record, emitted when the process *resumes*
  so its dependency edge can point at the record that released it: the
  engine's ``notify`` tap attributes each release to the notifying
  process's most recently emitted record (or its start marker).  Ids
  assigned at resume keep every edge pointing backwards, so recorded
  traces are acyclic by construction.

Body-side counter writes are captured as exact float deltas by diffing
``proc.counters`` across each generator step (rate-model accruals only
happen *between* steps, so the diff isolates the body's writes on both
backends); resident memory is captured as absolute held bytes.  Runs the
recorder cannot faithfully replay — killed or unfinished processes,
attached fault injectors, unattributable notifies, unbounded segments —
*taint* the recording instead of failing it: the trace is still built
for inspection, but :attr:`RecordedTrace.clean` is False and replay
equivalence is not claimed.

:func:`recording_session` extends this to code that builds its own
clusters internally (experiment runners): every cluster constructed
inside the ``with`` block gets a recorder, and
:func:`record_experiment` wraps a registry experiment end to end.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.cluster.cluster import _CLUSTER_OBSERVERS, Cluster
from repro.errors import ProcessCrash, TraceError
from repro.sim.process import (
    Condition,
    ProcessState,
    Segment,
    SimProcess,
    Sleep,
    Wait,
)
from repro.traces.schema import (
    TRACE_MACHINES,
    Trace,
    TraceMeta,
    TraceRecord,
)


class _RankEntry:
    """Mutable per-process recording state."""

    __slots__ = ("rank", "proc", "start", "last_id", "pending_wait", "prev_mem")

    def __init__(self, rank: int, proc: SimProcess, start: float) -> None:
        self.rank = rank
        self.proc = proc
        self.start = start
        #: id of the most recently emitted record (None before the first);
        #: what a notify fired by this process is attributed to
        self.last_id: int | None = None
        #: captured state of a yielded Wait, emitted as a record on resume
        self.pending_wait: tuple[tuple[tuple[str, float], ...], float | None, str] | None = None
        self.prev_mem: float = 0.0


@dataclass(frozen=True)
class RecordedTrace:
    """One cluster's recording: the trace plus its native ground truth.

    ``fingerprint`` is the recorded cluster's state fingerprint at
    finalize time — the value a byte-identical replay must reproduce.
    ``taints`` lists the reasons (if any) the recording cannot claim
    replay equivalence.
    """

    trace: Trace
    fingerprint: str
    taints: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.taints


class TraceRecorder:
    """Records every process of one cluster into a trace.

    Attach before any process is spawned; call :meth:`finalize` after the
    last ``run()`` returns.  One recorder per simulator — attaching a
    second is a :class:`~repro.errors.TraceError`.
    """

    def __init__(self, cluster: Cluster, name: str = "recorded") -> None:
        if cluster.sim.record is not None:
            raise TraceError("a trace recorder is already attached to this simulator")
        self.cluster = cluster
        self.name = name
        cluster.sim.record = self
        self._entries: list[_RankEntry] = []
        self._by_pid: dict[int, _RankEntry] = {}
        self._records: list[TraceRecord] = []
        self._id = 0
        self._tickers: list[tuple[float, float, float | None]] = []
        self._taints: list[str] = []
        #: the entry whose generator step is currently executing (notify
        #: attribution); None between steps and for unrecorded callers
        self._executing: _RankEntry | None = None
        #: pid -> dependency key assigned by the releasing notify, consumed
        #: when the released process resumes and its wait record is emitted
        self._pending_deps: dict[int, int] = {}
        self._finalized: RecordedTrace | None = None

    def taint(self, reason: str) -> None:
        if reason not in self._taints:
            self._taints.append(reason)

    # -- engine taps ---------------------------------------------------------

    def on_spawn(self, proc: SimProcess, start: float) -> None:
        entry = _RankEntry(rank=len(self._entries), proc=proc, start=start)
        self._entries.append(entry)
        self._by_pid[proc.pid] = entry
        inner_factory = proc._body_factory
        proc._body_factory = lambda p: self._wrap(entry, inner_factory(p))

    def on_notify(self, condition: Condition) -> None:
        waiters = condition.waiters
        if not waiters:
            return
        entry = self._executing
        if entry is None:
            self.taint(
                f"notify of {condition.name!r} outside any recorded process body"
            )
            return
        dep = -(entry.rank + 1) if entry.last_id is None else entry.last_id
        for waiter in waiters:
            if waiter.pid in self._by_pid:
                self._pending_deps[waiter.pid] = dep
            else:
                self.taint(f"notify released unrecorded process {waiter.name!r}")

    def on_every(self, interval: float, first: float, end: float) -> None:
        self._tickers.append(
            (interval, first, None if math.isinf(end) else end)
        )

    # -- body wrapper --------------------------------------------------------

    def _wrap(self, entry: _RankEntry, inner) -> Iterator[object]:
        """Pass-through generator around a process body.

        Forwards sends, throws, and close to the wrapped generator so the
        engine observes byte-identical behaviour, snapshotting counters
        around each step to isolate body-side writes.
        """
        try:
            pending_exc: BaseException | None = None
            while True:
                if entry.pending_wait is not None:
                    self._emit_wait(entry)
                before = dict(entry.proc.counters)
                outer = self._executing
                self._executing = entry
                try:
                    if pending_exc is None:
                        item = inner.send(None)
                    else:
                        exc, pending_exc = pending_exc, None
                        item = inner.throw(exc)
                except StopIteration:
                    self._emit_epilogue(entry, before)
                    return
                finally:
                    self._executing = outer
                self._observe(entry, item, before)
                try:
                    yield item
                except ProcessCrash as crash:
                    self.taint(
                        f"process {entry.proc.name!r} interrupted mid-run: {crash}"
                    )
                    pending_exc = crash
        finally:
            inner.close()

    # -- record emission -----------------------------------------------------

    def _next_id(self) -> int:
        self._id += 1
        return self._id

    def _counter_deltas(
        self, proc: SimProcess, before: dict[str, float]
    ) -> tuple[tuple[str, float], ...]:
        deltas = []
        for key, value in proc.counters.items():
            old = before.get(key, 0.0)
            if value != old:
                deltas.append((key, value - old))
        return tuple(deltas)

    def _mem_snapshot(self, entry: _RankEntry) -> float | None:
        held = self.cluster.node(entry.proc.node).memory.held_by(entry.proc.pid)
        if held == entry.prev_mem:
            return None
        entry.prev_mem = held
        return held

    def _finite_work(self, entry: _RankEntry, work: float, what: str) -> float:
        if math.isinf(work):
            self.taint(
                f"process {entry.proc.name!r} yielded an unbounded {what} "
                "(runs until stopped; not replayable)"
            )
            return 0.0
        return work

    def _observe(self, entry: _RankEntry, item: object, before: dict[str, float]) -> None:
        counters = self._counter_deltas(entry.proc, before)
        if isinstance(item, Segment):
            mem = self._mem_snapshot(entry)
            kind = "io" if item.io is not None else "send" if item.flows else "compute"
            record = TraceRecord(
                id=self._next_id(),
                kind=kind,
                rank=entry.rank,
                work=self._finite_work(entry, item.work, "segment"),
                cpu=item.cpu,
                cache=tuple(sorted(item.cache_footprint.items())),
                cache_intensity=item.cache_intensity,
                mpki_base=item.mpki_base,
                mpki_extra=item.mpki_extra,
                miss_cpi_penalty=item.miss_cpi_penalty,
                mem_bw=item.mem_bw,
                mem_bw_extra=item.mem_bw_extra,
                ips=item.ips,
                flows=tuple((flow.dst, flow.rate) for flow in item.flows),
                io=None
                if item.io is None
                else (item.io.fs, item.io.write_bw, item.io.read_bw, item.io.meta_ops),
                counters=counters,
                mem=mem,
                label=item.label,
            )
        elif isinstance(item, Sleep):
            mem = self._mem_snapshot(entry)
            record = TraceRecord(
                id=self._next_id(),
                kind="sleep",
                rank=entry.rank,
                work=self._finite_work(entry, item.duration, "sleep"),
                counters=counters,
                mem=mem,
                label="sleep",
            )
        elif isinstance(item, Wait):
            # Emitted on resume (see _emit_wait), once the releasing
            # notify has been attributed.
            entry.pending_wait = (
                counters,
                self._mem_snapshot(entry),
                item.condition.name or "wait",
            )
            return
        else:  # pragma: no cover - engine validates yieldables
            self.taint(f"process {entry.proc.name!r} yielded {item!r}")
            return
        self._records.append(record)
        entry.last_id = record.id

    def _emit_wait(self, entry: _RankEntry) -> None:
        assert entry.pending_wait is not None
        counters, mem, label = entry.pending_wait
        entry.pending_wait = None
        dep = self._pending_deps.pop(entry.proc.pid, None)
        if dep is None:
            self.taint(
                f"process {entry.proc.name!r} resumed from a wait "
                "with no recorded notify"
            )
            deps: tuple[int, ...] = ()
        else:
            deps = (dep,)
        record = TraceRecord(
            id=self._next_id(),
            kind="collective",
            rank=entry.rank,
            deps=deps,
            counters=counters,
            mem=mem,
            label=label,
        )
        self._records.append(record)
        entry.last_id = record.id

    def _emit_epilogue(self, entry: _RankEntry, before: dict[str, float]) -> None:
        """Counter writes after the last yield become a dep-free marker."""
        counters = self._counter_deltas(entry.proc, before)
        if not counters:
            return
        record = TraceRecord(
            id=self._next_id(),
            kind="collective",
            rank=entry.rank,
            counters=counters,
            label="epilogue",
        )
        self._records.append(record)
        entry.last_id = record.id

    # -- finalize ------------------------------------------------------------

    def finalize(self) -> RecordedTrace:
        """Detach from the simulator and build the trace (idempotent)."""
        if self._finalized is not None:
            return self._finalized
        sim = self.cluster.sim
        if sim.record is self:
            sim.record = None
        if not self._entries:
            self.taint("no processes were recorded")
        if self.cluster.faults is not None:
            self.taint("a fault injector is attached (fault timing is not recorded)")
        machine = self.cluster.spec.name
        if machine not in TRACE_MACHINES:
            self.taint(f"machine {machine!r} has no replay constructor")
            machine = TRACE_MACHINES[0]
        for entry in self._entries:
            state = entry.proc.state
            if state is ProcessState.KILLED:
                self.taint(f"process {entry.proc.name!r} was killed")
            elif not state.terminal:
                self.taint(f"process {entry.proc.name!r} did not finish")
            if entry.pending_wait is not None:
                self.taint(f"process {entry.proc.name!r} died holding a wait")
        meta = TraceMeta(
            name=self.name,
            machine=machine,
            nodes=len(self.cluster.nodes),
            ranks=max(len(self._entries), 1),
            placement=tuple((e.proc.node, e.proc.core) for e in self._entries)
            or (("node0", 0),),
            rank_names=tuple(e.proc.name for e in self._entries) or ("empty",),
            starts=tuple(e.start for e in self._entries) or (0.0,),
            filesystems=tuple(self.cluster.filesystems),
            tickers=tuple(self._tickers),
            ran_until=sim.now,
            origin="recorded",
        )
        trace = Trace(meta=meta, records=tuple(self._records))
        if not self._taints:
            try:
                trace.validate()
            except TraceError as err:
                self.taint(f"recorded trace failed validation: {err}")
        from repro.check.harness import fingerprint_cluster

        self._finalized = RecordedTrace(
            trace=trace,
            fingerprint=fingerprint_cluster(self.cluster),
            taints=tuple(self._taints),
        )
        return self._finalized


class RecordingSession:
    """Collects recorders for every cluster built while active."""

    def __init__(self, name: str = "recorded") -> None:
        self.name = name
        self.recorders: list[TraceRecorder] = []
        self._results: list[RecordedTrace] | None = None

    def _on_cluster(self, cluster: Cluster) -> None:
        index = len(self.recorders)
        self.recorders.append(
            TraceRecorder(cluster, name=f"{self.name}.{index}")
        )

    def finalize(self) -> list[RecordedTrace]:
        if self._results is None:
            self._results = [recorder.finalize() for recorder in self.recorders]
        return self._results

    @property
    def traces(self) -> list[RecordedTrace]:
        return self.finalize()

    def clean_traces(self) -> list[RecordedTrace]:
        """Recordings whose replay equivalence is actually claimed."""
        return [rec for rec in self.finalize() if rec.clean]


@contextmanager
def recording_session(name: str = "recorded"):
    """Record every cluster constructed inside the ``with`` block.

    Finalizes all recorders on exit, so :attr:`RecordingSession.traces`
    is complete as soon as the block closes.
    """
    session = RecordingSession(name)
    _CLUSTER_OBSERVERS.append(session._on_cluster)
    try:
        yield session
    finally:
        _CLUSTER_OBSERVERS.remove(session._on_cluster)
        session.finalize()


@dataclass(frozen=True)
class RecordedExperiment:
    """A registry experiment's native result plus its recordings."""

    name: str
    result: object
    recordings: tuple[RecordedTrace, ...] = field(default=())

    def clean_traces(self) -> list[RecordedTrace]:
        return [rec for rec in self.recordings if rec.clean]


def record_experiment(
    name: str,
    seed: int | None = None,
    overrides: dict[str, object] | None = None,
) -> RecordedExperiment:
    """Run a registry experiment with every cluster it builds recorded.

    Multi-cluster experiments (most figures) yield one recording per
    cluster; anomaly-bearing clusters come back tainted (anomalies run
    unbounded segments), while their clean baselines replay byte-for-byte.
    """
    from repro.experiments.registry import resolve_job_spec

    spec = resolve_job_spec(name)
    request = spec.normalize(seed=seed, overrides=overrides)
    with recording_session(name=name) as session:
        result = spec.run_request(request)
    return RecordedExperiment(
        name=name, result=result, recordings=tuple(session.finalize())
    )
