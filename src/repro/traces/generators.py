"""Seeded synthetic trace generators for AI-training and storage patterns.

Each generator is a pure function ``(seed, ranks, steps) -> Trace`` whose
randomness flows exclusively through :func:`repro.sim.rng.spawn_rng`, so
the same seed produces a byte-identical canonical JSONL on every run and
every platform.  Jitter values are rounded to a fixed decimal budget
before they enter a record, which keeps the serialized floats short and
makes the pinned corpus diffable by eye.

Patterns (the ATLAHS workload families):

* ``ai_training`` — data-parallel SGD: per-rank fwd/bwd compute with
  seeded jitter, then a ring allreduce (send to the ring neighbour,
  collective completion gated on *every* rank's send of that step).
* ``parameter_server`` — fan-in/fan-out: workers push gradients to rank
  0, rank 0 applies the update, workers pull parameters back.
* ``checkpoint_burst`` — compute epochs punctuated by barrier-aligned
  bursts where every rank writes its shard to the shared filesystem.
* ``metadata_storm`` — small-file create/stat storms: tiny writes with a
  dominant metadata-op demand, the pattern that saturates an NFS
  metadata server long before its data path.

Generated traces target the ``chameleon`` machine (it carries the NFS
appliance the storage patterns need) with one rank per node and replay
to completion (``ran_until`` 0).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import TraceError
from repro.sim.rng import spawn_rng
from repro.traces.schema import Trace, TraceMeta, TraceRecord

MB = 1_000_000.0

#: registry of generator name -> (seed, ranks, steps) -> Trace
TRACE_GENERATORS: dict[str, Callable[[int, int, int], Trace]] = {}


def _generator(name: str):
    def register(fn: Callable[[int, int, int], Trace]):
        TRACE_GENERATORS[name] = fn
        return fn

    return register


def generate_trace(name: str, seed: int = 0, ranks: int = 4, steps: int = 4) -> Trace:
    """Generate a named pattern; unknown names are a typed error."""
    if name not in TRACE_GENERATORS:
        known = ", ".join(sorted(TRACE_GENERATORS))
        raise TraceError(f"unknown trace generator {name!r} (known: {known})")
    if ranks < 2:
        raise TraceError(f"trace generators need >= 2 ranks, got {ranks}")
    if steps < 1:
        raise TraceError(f"trace generators need >= 1 step, got {steps}")
    return TRACE_GENERATORS[name](seed, ranks, steps).validate()


def _meta(name: str, seed: int, ranks: int, with_fs: bool = False) -> TraceMeta:
    return TraceMeta(
        name=name,
        machine="chameleon",
        nodes=ranks,
        ranks=ranks,
        placement=tuple((f"node{r}", 0) for r in range(ranks)),
        rank_names=tuple(f"{name}.r{r}" for r in range(ranks)),
        starts=(0.0,) * ranks,
        filesystems=("nfs",) if with_fs else (),
        seed=seed,
        origin="generated",
    )


def _jitter(rng, scale: float) -> float:
    """Symmetric multiplicative jitter in [1-scale, 1+scale], 6 decimals."""
    return round(1.0 + scale * (2.0 * float(rng.random()) - 1.0), 6)


@_generator("ai_training")
def ai_training(seed: int, ranks: int, steps: int) -> Trace:
    """Data-parallel training: jittered compute + ring allreduce per step."""
    meta = _meta("ai_training", seed, ranks)
    records: list[TraceRecord] = []
    next_id = 1
    # the collective of step s depends on every rank's send of step s
    prev_collective = [-(r + 1) for r in range(ranks)]
    for step in range(steps):
        send_ids: list[int] = []
        compute_ids: list[int] = []
        for rank in range(ranks):
            rng = spawn_rng(seed, f"ai_training:step{step}:rank{rank}")
            compute = TraceRecord(
                id=next_id,
                kind="compute",
                rank=rank,
                deps=(prev_collective[rank],),
                work=round(0.8 * _jitter(rng, 0.1), 6),
                cache=(("L2", 2.0 * MB),),
                cache_intensity=0.6,
                mem_bw=1_500.0 * MB,
                label=f"step{step}.fwd_bwd",
            )
            next_id += 1
            compute_ids.append(compute.id)
            send = TraceRecord(
                id=next_id,
                kind="send",
                rank=rank,
                deps=(compute.id,),
                work=0.25,
                cpu=0.1,
                flows=((f"r{(rank + 1) % ranks}", 900.0 * MB),),
                label=f"step{step}.ring_send",
            )
            next_id += 1
            send_ids.append(send.id)
            records.extend((compute, send))
        for rank in range(ranks):
            collective = TraceRecord(
                id=next_id,
                kind="collective",
                rank=rank,
                deps=tuple(send_ids),
                counters=(("trace_steps", 1.0),),
                label=f"step{step}.allreduce",
            )
            next_id += 1
            prev_collective[rank] = collective.id
            records.append(collective)
    return Trace(meta=meta, records=tuple(records))


@_generator("parameter_server")
def parameter_server(seed: int, ranks: int, steps: int) -> Trace:
    """Fan-in/fan-out: workers push to rank 0, rank 0 updates, workers pull."""
    meta = _meta("parameter_server", seed, ranks)
    records: list[TraceRecord] = []
    next_id = 1
    workers = range(1, ranks)
    prev_pull = {r: -(r + 1) for r in workers}
    prev_update = -1  # rank 0 start marker
    for step in range(steps):
        push_ids: list[int] = []
        for rank in workers:
            rng = spawn_rng(seed, f"parameter_server:step{step}:rank{rank}")
            grad = TraceRecord(
                id=next_id,
                kind="compute",
                rank=rank,
                deps=(prev_pull[rank],),
                work=round(0.6 * _jitter(rng, 0.15), 6),
                mem_bw=1_000.0 * MB,
                label=f"step{step}.grad",
            )
            next_id += 1
            push = TraceRecord(
                id=next_id,
                kind="send",
                rank=rank,
                deps=(grad.id,),
                work=0.15,
                cpu=0.1,
                flows=(("r0", 700.0 * MB),),
                label=f"step{step}.push",
            )
            next_id += 1
            push_ids.append(push.id)
            records.extend((grad, push))
        gather = TraceRecord(
            id=next_id,
            kind="recv",
            rank=0,
            deps=(prev_update, *push_ids),
            label=f"step{step}.gather",
        )
        next_id += 1
        update = TraceRecord(
            id=next_id,
            kind="compute",
            rank=0,
            deps=(gather.id,),
            work=0.3,
            cache=(("L3", 8.0 * MB),),
            cache_intensity=0.8,
            counters=(("trace_steps", 1.0),),
            label=f"step{step}.apply",
        )
        next_id += 1
        prev_update = update.id
        records.extend((gather, update))
        fanout_ids: list[int] = []
        for rank in workers:
            fanout = TraceRecord(
                id=next_id,
                kind="send",
                rank=0,
                deps=(update.id,),
                work=0.1,
                cpu=0.1,
                flows=((f"r{rank}", 700.0 * MB),),
                label=f"step{step}.fanout.r{rank}",
            )
            next_id += 1
            fanout_ids.append(fanout.id)
            records.append(fanout)
        for index, rank in enumerate(workers):
            pull = TraceRecord(
                id=next_id,
                kind="recv",
                rank=rank,
                deps=(fanout_ids[index],),
                counters=(("trace_steps", 1.0),),
                label=f"step{step}.pull",
            )
            next_id += 1
            prev_pull[rank] = pull.id
            records.append(pull)
    return Trace(meta=meta, records=tuple(records))


@_generator("checkpoint_burst")
def checkpoint_burst(seed: int, ranks: int, steps: int) -> Trace:
    """Compute epochs punctuated by barrier-aligned checkpoint write bursts."""
    meta = _meta("checkpoint_burst", seed, ranks, with_fs=True)
    records: list[TraceRecord] = []
    next_id = 1
    prev_barrier = [-(r + 1) for r in range(ranks)]
    for step in range(steps):
        write_ids: list[int] = []
        for rank in range(ranks):
            rng = spawn_rng(seed, f"checkpoint_burst:step{step}:rank{rank}")
            epoch = TraceRecord(
                id=next_id,
                kind="compute",
                rank=rank,
                deps=(prev_barrier[rank],),
                work=round(1.0 * _jitter(rng, 0.05), 6),
                mem_bw=800.0 * MB,
                label=f"epoch{step}.compute",
            )
            next_id += 1
            write = TraceRecord(
                id=next_id,
                kind="io",
                rank=rank,
                deps=(epoch.id,),
                work=0.5,
                cpu=0.2,
                io=("nfs", 250.0 * MB, 0.0, 50.0),
                mem=256.0 * MB,
                label=f"epoch{step}.ckpt_write",
            )
            next_id += 1
            write_ids.append(write.id)
            records.extend((epoch, write))
        for rank in range(ranks):
            barrier = TraceRecord(
                id=next_id,
                kind="collective",
                rank=rank,
                deps=tuple(write_ids),
                counters=(("trace_steps", 1.0),),
                label=f"epoch{step}.barrier",
            )
            next_id += 1
            prev_barrier[rank] = barrier.id
            records.append(barrier)
    return Trace(meta=meta, records=tuple(records))


@_generator("metadata_storm")
def metadata_storm(seed: int, ranks: int, steps: int) -> Trace:
    """Small-file create/stat storms: metadata-op-dominated NFS pressure."""
    meta = _meta("metadata_storm", seed, ranks, with_fs=True)
    records: list[TraceRecord] = []
    next_id = 1
    prev = [-(r + 1) for r in range(ranks)]
    for step in range(steps):
        for rank in range(ranks):
            rng = spawn_rng(seed, f"metadata_storm:step{step}:rank{rank}")
            ops = round(400.0 * _jitter(rng, 0.2), 6)
            storm = TraceRecord(
                id=next_id,
                kind="io",
                rank=rank,
                deps=(prev[rank],),
                work=0.8,
                cpu=0.3,
                io=("nfs", 2.0 * MB, 1.0 * MB, ops),
                label=f"burst{step}.create_stat",
            )
            next_id += 1
            prev[rank] = storm.id
            records.append(storm)
            pause = TraceRecord(
                id=next_id,
                kind="sleep",
                rank=rank,
                deps=(storm.id,),
                work=0.2,
                counters=(("trace_steps", 1.0),),
                label=f"burst{step}.think",
            )
            next_id += 1
            prev[rank] = pause.id
            records.append(pause)
    return Trace(meta=meta, records=tuple(records))
