"""repro.traces: GOAL-like workload traces — schema, generators, replay, recording.

The trace layer decouples *workloads* from *applications* (ROADMAP item
3, the ATLAHS direction): a trace is a canonical JSONL file of per-rank
compute/send/recv/collective/io records linked by explicit dependency
edges, and anything that can be traced can be replayed onto any cluster,
composed with faults and anomalies, and cached by content.

Four pieces (see docs/TRACES.md):

* :mod:`repro.traces.schema` — frozen record/trace dataclasses, the
  canonical serialization with sha256 trailer, loader and validator;
* :mod:`repro.traces.generators` — seeded synthetic AI-training and
  distributed-storage patterns (byte-reproducible via ``spawn_rng``);
* :mod:`repro.traces.replay` — :class:`TraceReplayApp` drives the
  engine's models from a trace, honoring dependencies;
* :mod:`repro.traces.recorder` — capture any native run (including
  registry experiments) into a trace; record-then-replay is
  byte-identical, pinned by the ``trace_replay`` differential oracle.
"""

from repro.traces.generators import TRACE_GENERATORS, generate_trace
from repro.traces.recorder import (
    RecordedExperiment,
    RecordedTrace,
    RecordingSession,
    TraceRecorder,
    record_experiment,
    recording_session,
)
from repro.traces.replay import (
    TraceReplayApp,
    build_replay_cluster,
    replay_fingerprint,
    replay_trace,
)
from repro.traces.schema import (
    RECORD_KINDS,
    TRACE_MACHINES,
    TRACE_VERSION,
    Trace,
    TraceMeta,
    TraceRecord,
    dump_trace,
    dumps,
    load_trace,
    loads,
)

__all__ = [
    "RECORD_KINDS",
    "RecordedExperiment",
    "RecordedTrace",
    "RecordingSession",
    "TRACE_GENERATORS",
    "TRACE_MACHINES",
    "TRACE_VERSION",
    "Trace",
    "TraceMeta",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayApp",
    "build_replay_cluster",
    "dump_trace",
    "dumps",
    "generate_trace",
    "load_trace",
    "loads",
    "record_experiment",
    "recording_session",
    "replay_fingerprint",
    "replay_trace",
]
