"""``repro trace-gen``: write seeded synthetic workload traces.

A thin front end over :mod:`repro.traces.generators`::

    repro trace-gen --list
    repro trace-gen ai_training --seed 0 --ranks 4 --steps 4 --out ai.jsonl

The output is the canonical JSONL serialization (sorted keys, sha256
trailer), so the same invocation is byte-identical on every machine —
CI generates a trace twice and ``cmp``s the files.
"""

from __future__ import annotations

import argparse

from repro.output import OutputWriter
from repro.traces.generators import TRACE_GENERATORS, generate_trace
from repro.traces.schema import dump_trace


def build_trace_gen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace-gen",
        description="Generate a seeded synthetic workload trace "
        "(canonical JSONL; see docs/TRACES.md).",
    )
    parser.add_argument(
        "generator",
        nargs="?",
        choices=sorted(TRACE_GENERATORS),
        help="workload pattern to generate (omit with --list to enumerate)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered trace generators"
    )
    parser.add_argument(
        "--out",
        default="trace.jsonl",
        metavar="FILE",
        help="trace output path (default trace.jsonl)",
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--ranks", type=int, default=4, help="trace ranks (default 4)"
    )
    parser.add_argument(
        "--steps", type=int, default=4, help="pattern steps (default 4)"
    )
    return parser


def trace_gen_main(argv: list[str]) -> int:
    parser = build_trace_gen_parser()
    args = parser.parse_args(argv)
    out = OutputWriter()
    if args.list or args.generator is None:
        width = max(len(name) for name in TRACE_GENERATORS)
        for name in sorted(TRACE_GENERATORS):
            doc = (TRACE_GENERATORS[name].__doc__ or "").strip().splitlines()[0]
            out.line(f"{name.ljust(width)}  {doc}")
        return 0
    trace = generate_trace(
        args.generator, seed=args.seed, ranks=args.ranks, steps=args.steps
    )
    path = dump_trace(trace, args.out)
    out.line(
        f"wrote {args.generator} trace: {len(trace.records)} records, "
        f"{trace.meta.ranks} ranks -> {path}"
    )
    out.line(f"sha256: {trace.sha256}")
    return 0
