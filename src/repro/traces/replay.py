"""Trace replay: drive the engine's MPI/network/storage models from a trace.

:class:`TraceReplayApp` turns each trace rank into an ordinary simulated
process on an ordinary :class:`~repro.cluster.cluster.Cluster`, so faults
and anomalies compose with replayed workloads exactly as with native
apps.  Per-rank records execute in program (ascending-id) order;
cross-rank edges are honored with engine conditions: a record's body
first waits until every dependency has completed, then applies the
recorded counter/memory state, then yields the record's payload
(:class:`~repro.sim.process.Segment` or Sleep — ``recv``/``collective``
records are pure waits).

Byte-identity with the recorded run rests on three invariants:

* **wakeup order** — all waiters on one dependency share one
  :class:`~repro.sim.process.Condition`; ``notify_all`` releases them in
  arrival order, which matches the native run by induction;
* **interleaved sums** — body-side counter writes are recorded as the
  exact float deltas and re-added at the same points between the same
  accrual intervals, so the final values are the same interleaved
  floating-point sum as the native run (resident memory, which nothing
  accrues into, is instead *set* to the recorded absolute bytes);
* **accrual boundaries** — the recorded run's recurring timers (metric
  samplers) are re-installed as no-op timers on the identical schedule,
  so fluid-advancement sums are split at the same instants and sum in
  the same order.
"""

from __future__ import annotations

import math
import re
from typing import Iterator

from repro.cluster.cluster import Cluster
from repro.errors import TraceError
from repro.sim.process import (
    Body,
    Condition,
    Flow,
    IODemand,
    Segment,
    SimProcess,
    Sleep,
    Wait,
    Yieldable,
)
from repro.traces.schema import WAIT_KINDS, Trace

_RANK_REF = re.compile(r"^r(\d+)$")


def _ticker_noop(at: float) -> None:
    """Stand-in for a recorded sampler tick: an accrual boundary, nothing else."""
    return None


class TraceReplayApp:
    """Replays a :class:`~repro.traces.schema.Trace` on a cluster.

    Parameters
    ----------
    trace:
        The trace to replay; validated on construction.
    cluster:
        Target cluster.  Must provide the nodes named by the trace's
        placement and every filesystem the trace's io records demand
        (:func:`build_replay_cluster` builds a matching one from the
        trace header).
    tickers:
        Re-install the recorded recurring timers as no-ops (default).
        Pass ``False`` when the caller re-attaches the *real* identical
        instrumentation (e.g. a live MetricService on the same schedule),
        which provides the same accrual boundaries itself.
    """

    def __init__(self, trace: Trace, cluster: Cluster, tickers: bool = True) -> None:
        trace.validate()
        self.trace = trace
        self.cluster = cluster
        self._install_tickers = tickers
        meta = trace.meta
        for node, _core in meta.placement:
            if node not in cluster.nodes:
                raise TraceError(
                    f"trace places a rank on {node!r} but the cluster has no such node"
                )
        for record in trace.records:
            if record.io is not None and record.io[0] not in cluster.filesystems:
                raise TraceError(
                    f"record {record.id} demands filesystem {record.io[0]!r} "
                    "which the cluster does not provide"
                )
        #: completed dependency keys: record ids and -(rank+1) start markers
        self._done: set[int] = set()
        #: one shared condition per still-pending dependency key
        self._conds: dict[int, Condition] = {}
        self.procs: list[SimProcess] = []
        self._launched = False

    # -- lifecycle ---------------------------------------------------------

    def launch(self) -> "TraceReplayApp":
        """Spawn one process per rank at the recorded start times."""
        if self._launched:
            raise TraceError("trace replay already launched")
        self._launched = True
        meta = self.trace.meta
        if self._install_tickers:
            for interval, start, end in meta.tickers:
                self.cluster.sim.every(
                    interval,
                    _ticker_noop,
                    start=start,
                    end=math.inf if end is None else end,
                )
        per_rank = self.trace.per_rank()
        for rank in range(meta.ranks):
            node, core = meta.placement[rank]
            proc = self.cluster.spawn(
                meta.rank_names[rank],
                self._rank_body(rank, per_rank[rank]),
                node=node,
                core=core,
                at=meta.starts[rank],
            )
            self.procs.append(proc)
        return self

    @property
    def finished(self) -> bool:
        return bool(self.procs) and all(p.state.terminal for p in self.procs)

    def run(self, timeout: float = math.inf) -> "TraceReplayApp":
        """Launch (if needed) and run the replay to its recorded horizon.

        Recorded traces carry ``ran_until`` (the instant the recording
        was finalized); the replay runs exactly that far so the final
        clock matches.  Generated traces (``ran_until`` 0) run until
        every rank finishes, bounded by ``timeout``.
        """
        if not self._launched:
            self.launch()
        horizon = self.trace.meta.ran_until
        if horizon > 0:
            self.cluster.sim.run(until=min(horizon, timeout))
        else:
            self.cluster.sim.run(until=timeout, stop_when=lambda: self.finished)
        return self

    # -- dependency machinery ----------------------------------------------

    def _complete(self, key: int) -> None:
        """Mark a dependency satisfied and wake everyone blocked on it.

        The key enters ``_done`` *before* the notify so a dependent that
        checks between now and its next wait cannot miss the wakeup.
        """
        self._done.add(key)
        cond = self._conds.pop(key, None)
        if cond is not None:
            self.cluster.sim.notify(cond)

    def _await_dep(self, key: int) -> Iterator[Yieldable]:
        while key not in self._done:
            cond = self._conds.setdefault(key, Condition(name=f"trace.dep{key}"))
            yield Wait(cond)

    # -- record execution ----------------------------------------------------

    def _rank_body(self, rank: int, records):
        meta = self.trace.meta
        node = meta.placement[rank][0]

        def body(proc: SimProcess) -> Body:
            self._complete(-(rank + 1))
            ledger = self.cluster.node(node).memory
            try:
                for record in records:
                    # Counter deltas and the resident-set target apply when
                    # the record becomes current — *before* its dependencies
                    # are awaited — matching the native run, where body-side
                    # writes precede the block.  Samplers that tick during
                    # the wait therefore read identical state.
                    for key, value in record.counters:
                        proc.add_counter(key, value)
                    if record.mem is not None:
                        ledger.free_all(proc.pid)
                        if record.mem > 0:
                            ledger.alloc(proc.pid, record.mem)
                    for dep in record.deps:
                        yield from self._await_dep(dep)
                    payload = self._payload(record)
                    if payload is not None:
                        yield payload
                    self._complete(record.id)
            finally:
                ledger.free_all(proc.pid)

        return body

    def _payload(self, record) -> Yieldable | None:
        if record.kind in WAIT_KINDS:
            return None
        if record.kind == "sleep":
            return Sleep(record.work)
        return Segment(
            work=record.work,
            cpu=record.cpu,
            cache_footprint=dict(record.cache),
            cache_intensity=record.cache_intensity,
            mpki_base=record.mpki_base,
            mpki_extra=record.mpki_extra,
            miss_cpi_penalty=record.miss_cpi_penalty,
            mem_bw=record.mem_bw,
            mem_bw_extra=record.mem_bw_extra,
            flows=tuple(
                Flow(dst=self._resolve_dst(dst), rate=rate)
                for dst, rate in record.flows
            ),
            io=None if record.io is None else IODemand(*record.io),
            ips=record.ips,
            label=record.label,
        )

    def _resolve_dst(self, dst: str) -> str:
        """Map ``"r<k>"`` rank references to placed node names."""
        match = _RANK_REF.match(dst)
        if match is None:
            return dst
        rank = int(match.group(1))
        if rank >= self.trace.meta.ranks:
            raise TraceError(f"flow references rank {rank} of a {self.trace.meta.ranks}-rank trace")
        return self.trace.meta.placement[rank][0]


def build_replay_cluster(trace: Trace, backend: str | None = None) -> Cluster:
    """A cluster matching the trace header: machine, node count, filesystems."""
    meta = trace.meta
    if meta.machine == "voltrino":
        cluster = Cluster.voltrino(num_nodes=meta.nodes, backend=backend)
    elif meta.machine == "chameleon":
        cluster = Cluster.chameleon(
            num_nodes=meta.nodes,
            with_nfs="nfs" in meta.filesystems,
            backend=backend,
        )
    else:  # pragma: no cover - schema validation rejects this earlier
        raise TraceError(f"cannot build a cluster for machine {meta.machine!r}")
    missing = set(meta.filesystems) - set(cluster.filesystems)
    if missing:
        raise TraceError(
            f"trace needs filesystems {sorted(missing)} that "
            f"{meta.machine!r} does not provide"
        )
    return cluster


def replay_trace(
    trace: Trace, backend: str | None = None, tickers: bool = True
) -> Cluster:
    """Build a matching cluster, replay the trace on it, return the cluster."""
    cluster = build_replay_cluster(trace, backend=backend)
    TraceReplayApp(trace, cluster, tickers=tickers).run()
    return cluster


def replay_fingerprint(trace: Trace, backend: str | None = None) -> str:
    """Replay and fingerprint — the byte-identity half of the trace oracle."""
    from repro.check.harness import fingerprint_cluster

    return fingerprint_cluster(replay_trace(trace, backend=backend))
