#!/usr/bin/env python
"""Coverage ratchet: the measured line coverage may only go up.

CI runs the test suite under ``pytest --cov=repro --cov-report=json`` and
then gates on this script.  The committed floor lives in
``COVERAGE_ratchet.json``; the gate fails when measured coverage drops
below it, and nudges (without failing) when coverage has risen far
enough that the floor should be ratcheted up and committed.

Usage::

    python tools/coverage_gate.py coverage.json
    python tools/coverage_gate.py coverage.json --update   # raise the floor

The floor is deliberately conservative the first time a module lands;
``--update`` rounds the measured value *down* to one decimal so a rerun
with normal jitter never dips below its own ratchet.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

#: measured coverage must exceed the floor minus nothing — but a nudge to
#: raise the ratchet only fires once the gap is worth a commit
NUDGE_MARGIN = 2.0


def read_percent(coverage_json: Path) -> float:
    data = json.loads(coverage_json.read_text())
    try:
        return float(data["totals"]["percent_covered"])
    except (KeyError, TypeError) as err:
        raise SystemExit(
            f"error: {coverage_json} has no totals.percent_covered "
            f"(is it a coverage.py JSON report?): {err}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("coverage_json", type=Path, help="coverage.py JSON report")
    parser.add_argument(
        "--ratchet",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "COVERAGE_ratchet.json",
        help="ratchet file holding the committed floor",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="raise the floor to the measured value (never lowers it)",
    )
    args = parser.parse_args(argv)

    measured = read_percent(args.coverage_json)
    ratchet = json.loads(args.ratchet.read_text())
    floor = float(ratchet["line_percent"])

    if args.update:
        new_floor = max(floor, math.floor(measured * 10) / 10)
        ratchet["line_percent"] = new_floor
        args.ratchet.write_text(json.dumps(ratchet, indent=2) + "\n")
        print(f"ratchet: floor {floor:.1f}% -> {new_floor:.1f}%")
        return 0

    print(f"coverage: measured {measured:.2f}%, committed floor {floor:.1f}%")
    if measured < floor:
        print(
            f"FAIL: coverage dropped below the ratchet floor "
            f"({measured:.2f}% < {floor:.1f}%). Add tests for what you "
            f"changed, or explain in the PR why the floor must move down."
        )
        return 1
    if measured >= floor + NUDGE_MARGIN:
        print(
            f"note: coverage is {measured - floor:.1f} points above the "
            f"floor; consider `python tools/coverage_gate.py "
            f"{args.coverage_json} --update` and committing the ratchet."
        )
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
