"""Table 2: measured application characterisation matches the paper."""

from conftest import emit

from repro.experiments import run_table2


def test_table2(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit(result)
    assert len(result.rows) == 8
    for row in result.rows:
        assert row.matches_paper, f"{row.app} classified differently than Table 2"
