"""Extension: forest feature importances over the diagnosis dataset."""

from conftest import emit

from repro.experiments.ext_importance import run_ext_importance


def test_ext_importance(benchmark):
    result = benchmark.pedantic(run_ext_importance, rounds=1, iterations=1)
    emit(result)
    assert len(result.top_features) == 10
    # Importances are a distribution over features.
    total = sum(result.family_importance.values())
    assert 0.99 < total < 1.01
    # CPU utilisation and hardware-counter families carry most of the
    # signal (the same families whose removal costs the most F1 in the
    # feature ablation).
    fam = result.family_importance
    assert fam["procstat"] + fam["spapiHASW"] + fam["meminfo"] > 0.6