"""Fig. 9: diagnosis F1 per anomaly class for the three classifiers."""

from conftest import emit

from repro.experiments import run_fig9

EASY_CLASSES = ("none", "memleak", "memeater")
HARD_CLASSES = ("cpuoccupy", "membw", "cachecopy")


def test_fig9(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    emit(result)
    rf = result.reports["RandomForest"]
    # The paper reports an overall random-forest F1 of 0.94.
    assert rf.macro_f1 > 0.75
    # Memory anomalies and clean runs are diagnosed nearly perfectly.
    for cls in EASY_CLASSES:
        assert rf.f1_per_class[cls] > 0.85
    # The hard trio is, on average, harder than the easy trio.
    easy = sum(rf.f1_per_class[c] for c in EASY_CLASSES) / 3
    hard = sum(rf.f1_per_class[c] for c in HARD_CLASSES) / 3
    assert hard <= easy + 1e-9
    # All three classifiers are usable on this data (paper Fig. 9 shows
    # the three clustered together per class).
    for report in result.reports.values():
        assert report.macro_f1 > 0.7, report.name
