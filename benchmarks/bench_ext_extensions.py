"""Extension studies beyond the paper's figures (DESIGN.md §4 extras).

Four follow-ups the paper implies but does not run:

* global-link contention on a full dragonfly (netoccupy across groups),
* OS-jitter amplification with scale (cpuoccupy as bursty daemons),
* metadata isolation (NFS appliance vs Lustre-like separate MDS),
* allocation policies over a job *stream* (RR keeps hitting bad nodes).
"""

from conftest import emit

from repro.experiments import (
    run_ext_dragonfly,
    run_ext_jitter,
    run_ext_jobstream,
    run_ext_lustre,
)


def test_ext_dragonfly(benchmark):
    result = benchmark.pedantic(run_ext_dragonfly, rounds=1, iterations=1)
    emit(result)
    within = result.rows[0]
    across = result.rows[1]
    # Inside a group the redundancy bounds the damage (Fig. 6 behaviour);
    # across groups the thin global link is the hotspot.
    assert within[3] > 0.6
    assert across[3] < 0.3
    assert across[1] < within[1]  # global links are thinner even when clean


def test_ext_jitter(benchmark):
    result = benchmark.pedantic(run_ext_jitter, rounds=1, iterations=1)
    emit(result)
    slowdowns = result.slowdowns
    # Jitter costs more as the job widens (amplification), and the clean
    # baseline is scale-invariant in this weak-scaling setup.
    assert slowdowns[-1] > slowdowns[0] + 0.02
    assert all(s > 1.0 for s in slowdowns)
    assert max(result.clean) < 1.05 * min(result.clean)


def test_ext_lustre(benchmark):
    result = benchmark.pedantic(run_ext_lustre, rounds=1, iterations=1)
    emit(result)
    # Shared-server NFS loses half its streaming bandwidth to the
    # metadata storm; a dedicated MDS keeps nearly all of it.
    assert result.streaming_retained("nfs") < 0.6
    assert result.streaming_retained("lustre") > 0.9


def test_ext_jobstream(benchmark):
    result = benchmark.pedantic(run_ext_jobstream, rounds=1, iterations=1)
    emit(result)
    import numpy as np

    wbas = float(np.mean(result.runtimes["WBAS"]))
    rr = float(np.mean(result.runtimes["RoundRobin"]))
    # RR walks into the anomalous nodes on (nearly) every allocation;
    # WBAS mostly avoids them — it may take one late in the stream when
    # the recently-busy healthy nodes' 5-minute load average makes the
    # lightly-anomalous node look preferable (a genuine CP trade-off).
    assert result.anomalous_hits["WBAS"] < result.anomalous_hits["RoundRobin"] / 2
    assert result.anomalous_hits["RoundRobin"] >= 4
    assert wbas < rr
    assert result.makespans["WBAS"] < result.makespans["RoundRobin"]