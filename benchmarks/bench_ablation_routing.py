"""Ablation: adaptive vs static routing on the Fig. 6 scenario.

The paper attributes netoccupy's bounded impact to Voltrino's redundant
links and adaptive routing.  Restricting the flow solver to a single path
(k_paths=1) removes the redundancy and the OSU benchmark loses far more
bandwidth — confirming the topology/routing explanation.
"""

from conftest import emit

from repro.apps import OSUBandwidth
from repro.cluster import Cluster
from repro.core import NetOccupy
from repro.experiments.common import format_table
from repro.network.topology import aries_like
from repro.units import MB


def _osu_bw(k_paths: int, pairs: int) -> float:
    topo = aries_like(num_nodes=48)
    cluster = Cluster(num_nodes=48, topology=topo, k_paths=k_paths)
    osu = OSUBandwidth(message_size=4 * MB, messages=32)
    osu.launch(cluster, src="node0", dst="node4")
    for p in range(pairs):
        NetOccupy.launch_pair(cluster, src=f"node{1 + p}", dst=f"node{5 + p}", ranks=4)
    cluster.sim.run(until=4000)
    return osu.bandwidth() / 1e9


class RoutingAblation:
    def __init__(self, rows):
        self.rows = rows

    def render(self):
        return format_table(
            ["routing", "clean GB/s", "3 pairs GB/s", "retained"],
            self.rows,
            title="Ablation: routing policy vs netoccupy damage (OSU 4MB)",
        )


def test_ablation_routing(benchmark):
    def run():
        rows = []
        for label, k in (("adaptive k=4", 4), ("static k=1", 1)):
            clean = _osu_bw(k, 0)
            contended = _osu_bw(k, 3)
            rows.append((label, clean, contended, contended / clean))
        return RoutingAblation(rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    adaptive_retained = result.rows[0][3]
    static_retained = result.rows[1][3]
    # Adaptive routing bounds the damage; static routing suffers far more.
    assert adaptive_retained > 0.7
    assert static_retained < adaptive_retained - 0.15
