"""Extension: Varbench-style induced-variability characterisation."""

from conftest import emit

from repro.experiments import run_ext_variability


def test_ext_variability(benchmark):
    result = benchmark.pedantic(run_ext_variability, rounds=1, iterations=1)
    emit(result)
    reports = result.reports
    clean = reports["none"]
    # Clean runs are nearly deterministic (only app jitter).
    assert clean.coefficient_of_variation < 0.02
    # Randomly-phased CPU-path anomalies induce real run-to-run
    # variability on the CPU-bound app; memleak does not.
    for label in ("cpuoccupy", "membw"):
        report = reports[label]
        assert report.mean > clean.mean
        assert report.coefficient_of_variation > 3 * clean.coefficient_of_variation
    assert reports["memleak"].coefficient_of_variation < 0.02