"""Fig. 7: I/O anomalies vs IOR on the Chameleon NFS appliance."""

from conftest import emit

from repro.experiments import run_fig7


def test_fig7(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    emit(result)
    none = result.rows["none"]
    iobw = result.rows["iobandwidth"]
    iometa = result.rows["iometadata"]
    # Both anomalies reduce every phase.
    for phase in ("write", "access", "read"):
        assert iobw[phase] < none[phase]
        assert iometa[phase] < none[phase]
    # iobandwidth hits the streaming phases hardest (paper: "impact of
    # iobandwidth is higher ... single disk").
    assert iobw["write"] < iometa["write"]
    assert iobw["read"] < iometa["read"]
    # iometadata also hurts streaming because the NFS appliance has no
    # separate metadata server.
    assert iometa["write"] < 0.5 * none["write"]
    # The access (metadata) phase collapses under both anomalies.
    assert iometa["access"] < 0.5 * none["access"]
    assert iobw["access"] < 0.5 * none["access"]
