"""Fig. 13: stencil iteration time vs cpuoccupy for two load balancers."""

from conftest import emit

from repro.experiments import run_fig13


def test_fig13(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    emit(result)
    lb_obj = dict(zip(result.utilizations, result.time_per_iter["LBObjOnly"]))
    greedy = dict(zip(result.utilizations, result.time_per_iter["GreedyRefineLB"]))
    # Equal with no anomaly.
    assert abs(lb_obj[0] - greedy[0]) < 0.02 * lb_obj[0]
    # GreedyRefine wins clearly through the mid-range (< 16 CPUs).
    for pct in (200, 400, 800, 1200):
        assert greedy[pct] < 0.85 * lb_obj[pct]
    # The balancers converge when the anomaly occupies most cores.
    assert greedy[3200] > 0.95 * lb_obj[3200]
    # LBObjOnly pays the occupied-core price as soon as any core is hit.
    assert lb_obj[200] > 1.5 * lb_obj[0]
