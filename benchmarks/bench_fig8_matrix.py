"""Fig. 8: application runtime under each anomaly."""

from conftest import emit

from repro.experiments import run_fig8

CPU_APPS = ("CoMD", "miniMD", "sw4lite")
MEM_APPS = ("cloverleaf", "milc", "miniAMR", "miniGhost")


def test_fig8(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    emit(result)
    for app in CPU_APPS:
        # CPU-intensive apps are heavily affected by cachecopy/cpuoccupy...
        assert result.slowdown(app, "cachecopy") > 1.5
        assert result.slowdown(app, "cpuoccupy") > 1.5
        # ... and essentially immune to membw.
        assert result.slowdown(app, "membw") < 1.1
    for app in MEM_APPS:
        # Memory-intensive apps are most impacted by membw.
        assert result.slowdown(app, "membw") > 1.25
        assert result.slowdown(app, "membw") > result.slowdown(app, "cpuoccupy")
    for app in result.runtimes:
        # Nobody is significantly affected by netoccupy (adaptive-routed
        # fabric) nor by the memory-footprint anomalies.
        assert result.slowdown(app, "netoccupy") < 1.15
        assert result.slowdown(app, "memleak") < 1.1
        assert result.slowdown(app, "memeater") < 1.1
