"""Extension: online diagnosis timeline with detection latency."""

from conftest import emit

from repro.experiments import run_ext_online


def test_ext_online(benchmark):
    result = benchmark.pedantic(run_ext_online, rounds=1, iterations=1)
    emit(result)
    report = result.report
    # The diagnoser is right for most of the timeline...
    assert report.accuracy > 0.75
    # ...and names the injected anomaly within a window-and-a-half of its
    # onset (the runtime-phase responsiveness of the paper's framework).
    assert report.detection_latency is not None
    assert report.detection_latency <= 35.0
    # The anomaly window is dominated by the correct label.
    start, end = result.anomaly_window
    inside = report.labels_between(start + 25, end)
    assert inside and inside.count("cachecopy") / len(inside) > 0.6