"""Ablation: cache-occupancy contest sharpness.

The occupancy model weights tenants by ``intensity ** sharpness``.  This
bench sweeps the exponent on the Fig. 3 scenario (miniGhost vs
cachecopy-L3) to show the monotone MPKI ordering is robust to the choice,
while the absolute victim MPKI shifts.
"""

from conftest import emit

from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import CacheCopy
from repro.experiments.common import format_table


def _mpki(sharpness: float, with_anomaly: bool) -> float:
    cluster = Cluster(num_nodes=1, cache_sharpness=sharpness)
    app = get_app("miniGhost").scaled(iterations=10)
    job = AppJob(app, cluster, nodes=["node0"], ranks_per_node=1, seed=7)
    job.launch()
    if with_anomaly:
        sibling = cluster.spec.sibling_of(0)
        CacheCopy(cache="L3").launch(cluster, "node0", core=sibling)
    job.run(timeout=10_000)
    rank = job.procs[0]
    return rank.counters["l3_misses"] / rank.counters["instructions"] * 1000.0


class CacheSharpnessAblation:
    def __init__(self, rows):
        self.rows = rows

    def render(self):
        return format_table(
            ["sharpness", "clean MPKI", "cachecopy-L3 MPKI"],
            self.rows,
            title="Ablation: occupancy sharpness vs miniGhost L3 MPKI",
        )


def test_ablation_cache_sharpness(benchmark):
    def run():
        return CacheSharpnessAblation(
            [(s, _mpki(s, False), _mpki(s, True)) for s in (0.5, 1.0, 2.0)]
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    for _, clean, contended in result.rows:
        assert contended > 2.0 * clean  # the anomaly always hurts
    # Higher sharpness -> the high-intensity anomaly wins more occupancy
    # -> more victim misses.
    contended = [row[2] for row in result.rows]
    assert contended == sorted(contended)
