"""Figs. 11-12: RR vs WBAS allocation under anomalies."""

from conftest import emit

from repro.experiments import run_fig11_12


def test_fig11_12(benchmark):
    result = benchmark.pedantic(run_fig11_12, rounds=1, iterations=1)
    emit(result)
    # Fig 11: RR walks straight into the anomalies; WBAS avoids node0
    # (cpuoccupy) and node2 (memleak).
    assert result.allocations["RoundRobin"] == ["node0", "node1", "node2", "node3"]
    wbas_nodes = result.allocations["WBAS"]
    assert "node0" not in wbas_nodes and "node2" not in wbas_nodes
    # Fig 12: WBAS cuts execution time substantially (paper: 26%).
    assert 0.1 < result.improvement() < 0.6
