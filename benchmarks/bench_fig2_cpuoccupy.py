"""Fig. 2: cpuoccupy intensity tracks measured CPU utilisation."""

from conftest import emit

from repro.experiments import run_fig2


def test_fig2(benchmark):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    emit(result)
    # Utilisation tracks the knob within the OS-jitter floor (< 1%).
    for intensity, util in zip(result.intensities, result.utilizations):
        assert abs(util - intensity) < 1.0
    # Monotone in intensity.
    assert result.utilizations == sorted(result.utilizations)
