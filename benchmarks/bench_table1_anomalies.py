"""Table 1: the anomaly inventory and knob surface."""

from conftest import emit

from repro.core import ANOMALY_REGISTRY
from repro.experiments import run_table1


def test_table1(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit(result)
    assert len(result.rows) == 8
    names = {row[1] for row in result.rows}
    assert names == set(ANOMALY_REGISTRY)
