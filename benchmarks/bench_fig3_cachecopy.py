"""Fig. 3: cachecopy working-set size vs miniGhost L3 MPKI."""

from conftest import emit

from repro.experiments import run_fig3


def test_fig3(benchmark):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    emit(result)
    for machine in result.machines:
        mpki = result.mpki[machine]
        # MPKI grows monotonically with the anomaly's working-set level.
        assert mpki["none"] < mpki["L1"] < mpki["L2"] < mpki["L3"]
    # Chameleon (smaller L3) suffers more than Voltrino at every level.
    for level in ("none", "L1", "L2", "L3"):
        assert result.mpki["chameleon"][level] > result.mpki["voltrino"][level]
