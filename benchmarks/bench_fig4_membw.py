"""Fig. 4: membw slashes STREAM bandwidth; cachecopy does not."""

from conftest import emit

from repro.experiments import run_fig4


def test_fig4(benchmark):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    emit(result)
    rates = dict(zip(result.labels, result.best_rate_gbps))
    # Strictly decreasing with membw instance count.
    assert rates["none"] > rates["membw 1x"] > rates["membw 3x"]
    assert rates["membw 3x"] > rates["membw 7x"] > rates["membw 15x"]
    # 15 membw instances leave STREAM with a small fraction of its rate.
    assert rates["membw 15x"] < 0.3 * rates["none"]
    # cachecopy on 15 cores barely moves memory bandwidth (< 10%).
    assert rates["cachecopy 15x"] > 0.9 * rates["none"]
