"""Fig. 5: memory usage over time for memleak vs memeater."""

import numpy as np
from conftest import emit

from repro.experiments import run_fig5


def test_fig5(benchmark):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    emit(result)
    leak = result.usage_gb["memleak"]
    eater = result.usage_gb["memeater"]
    baseline = leak[2]
    # memeater ramps quickly then stays flat.
    assert eater[60] > baseline + 3.0
    assert abs(eater[400] - eater[60]) < 0.2
    # memleak keeps growing for its whole duration.
    assert leak[150] > leak[60] > baseline
    assert leak[440] > leak[150]
    # Both release their memory once the duration elapses (t > 460).
    assert abs(leak[-1] - baseline) < 0.2
    assert abs(eater[-1] - baseline) < 0.2
    # The leak's ramp is roughly linear (staircase at 1 Hz sampling).
    mid = np.diff(leak[60:400])
    assert np.all(mid >= -1e-6)
