"""Fig. 10: random-forest confusion matrix."""

import numpy as np
from conftest import emit

from repro.experiments import run_fig10

HARD = ("cpuoccupy", "membw", "cachecopy")


def test_fig10(benchmark):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    emit(result)
    matrix, labels = result.matrix, result.labels
    idx = {label: i for i, label in enumerate(labels)}
    # The easy classes are near-perfectly diagnosed (paper: 1.0/1.0/0.86).
    for cls in ("none", "memleak", "memeater"):
        i = idx[cls]
        assert matrix[i, i] == max(matrix[i]), cls
        assert matrix[i, i] > 0.8, cls
    # The hard trio keeps a non-trivial diagonal (paper: 0.45-0.60; our
    # substrate makes cpuoccupy a little harder still) even though
    # individual rows leak heavily to their confusables.
    for cls in HARD:
        i = idx[cls]
        assert matrix[i, i] > 0.25, cls
    assert result.diagonal_mean > 0.7
    # Residual confusion concentrates within the hard trio: mass leaked
    # from a hard class lands mostly on the other hard classes.
    for cls in HARD:
        i = idx[cls]
        off = 1.0 - matrix[i, i]
        within_hard = sum(matrix[i, idx[o]] for o in HARD if o != cls)
        if off > 0.02:
            assert within_hard >= 0.5 * off
    assert np.allclose(matrix.sum(axis=1), 1.0, atol=1e-6)
