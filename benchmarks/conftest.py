"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one table or figure of the paper.  Run::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the printed rows/series (the same quantities the paper
plots); every bench also asserts the qualitative shape the paper reports,
so a silent model regression fails loudly.  Each rendered table is also
written to ``results/<ResultType>.txt`` as a reproducibility artefact,
paired with ``results/<ResultType>.manifest.json`` recording its
provenance (package version + table checksum; byte-identical across
reruns — see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.common import write_result_manifest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def emit(result) -> None:
    """Print an experiment's table and archive it under ``results/``."""
    text = result.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = type(result).__name__.lstrip("_")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    write_result_manifest(RESULTS_DIR, name, text + "\n")
