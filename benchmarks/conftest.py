"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one table or figure of the paper.  Run::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the printed rows/series (the same quantities the paper
plots); every bench also asserts the qualitative shape the paper reports,
so a silent model regression fails loudly.  Each rendered table is also
written to ``results/<ResultType>.txt`` as a reproducibility artefact,
paired with ``results/<ResultType>.manifest.json`` recording its
provenance (package version + table checksum; byte-identical across
reruns — see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.registry import get_experiment, persist_result

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def emit(result) -> None:
    """Print an experiment's table and archive it under ``results/``.

    Persistence goes through :func:`repro.experiments.registry.persist_result`
    — the same path the ``repro experiment`` CLI uses — so both front ends
    produce byte-identical artefacts.
    """
    print()
    print(result.render())
    persist_result(result, RESULTS_DIR)


def run_registered(name: str, **overrides):
    """Run a registry experiment with this bench's overrides applied."""
    return get_experiment(name).run(**overrides)
