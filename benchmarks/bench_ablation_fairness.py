"""Ablation: what produces the Fig. 4 shape — latency degradation vs
capacity sharing.

DESIGN.md calls out two mechanisms in the memory-bandwidth model:

1. the *latency degradation* other traffic imposes on a core's achievable
   bandwidth (``bw_latency_alpha``), and
2. the *capacity sharing* discipline once the socket pool saturates
   (max-min vs proportional).

This bench sweeps both on the Fig. 4 scenario.  With ``alpha = 0`` the
early part of the curve flattens (1x/3x membw no longer hurt STREAM,
because raw demands still fit the pool) — showing the latency term is
what reproduces the paper's early degradation — while the sharing
discipline only matters once the pool saturates at high instance counts.
"""

from conftest import emit

from repro.apps import StreamBenchmark
from repro.cluster import Cluster, MachineSpec
from repro.core import MemBw
from repro.experiments.common import format_table
from repro.resources.fairshare import max_min_fair_share, proportional_share

COUNTS = (0, 1, 3, 7, 15)


def _sweep(alpha, share_fn):
    spec = MachineSpec.voltrino().with_overrides(bw_latency_alpha=alpha)
    rates = []
    for n in COUNTS:
        cluster = Cluster(num_nodes=1, spec=spec, share_fn=share_fn)
        stream = StreamBenchmark()
        stream.launch(cluster, "node0", core=0)
        for i in range(n):
            MemBw().launch(cluster, "node0", core=1 + i)
        cluster.sim.run(until=500)
        rates.append(stream.best_rate() / 1e9)
    return rates


class BandwidthModelAblation:
    def __init__(self, rows):
        self.rows = rows

    def render(self):
        return format_table(
            ["model variant"] + [f"{n}x" for n in COUNTS],
            [(label, *series) for label, series in self.rows],
            title="Ablation: STREAM GB/s under membw, by bandwidth model",
        )


def test_ablation_bandwidth_model(benchmark):
    def run():
        return BandwidthModelAblation(
            [
                ("alpha=1.0, max-min", _sweep(1.0, max_min_fair_share)),
                ("alpha=0.5, max-min", _sweep(0.5, max_min_fair_share)),
                ("alpha=0.0, max-min", _sweep(0.0, max_min_fair_share)),
                ("alpha=0.0, proportional", _sweep(0.0, proportional_share)),
            ]
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    series = dict(result.rows)
    full = series["alpha=1.0, max-min"]
    no_latency = series["alpha=0.0, max-min"]
    # The latency term produces the early degradation: without it, a
    # single membw instance leaves STREAM untouched; with it, STREAM
    # already loses >15% (the paper's Fig. 4 shows the early drop).
    assert no_latency[1] > 0.99 * no_latency[0]
    assert full[1] < 0.85 * full[0]
    # All variants agree the curve is monotone non-increasing.
    for label, rates in result.rows:
        assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:])), label
    # The sharing discipline only matters once the pool saturates: the
    # 15x points differ between max-min and proportional at alpha=0.
    prop = series["alpha=0.0, proportional"]
    assert abs(prop[-1] - no_latency[-1]) > 0.05
