"""Ablation: which metric families carry the diagnosis signal.

Drops one sampler family at a time from the diagnosis feature set and
re-evaluates the random forest, mirroring the paper's observation that
missing memory-bandwidth metrics cause the cpuoccupy/membw/cachecopy
confusion.
"""

from conftest import emit

from repro.analytics.diagnosis import DiagnosisDataset, DiagnosisPipeline
from repro.analytics.forest import RandomForestClassifier
from repro.analytics.features import STAT_NAMES
from repro.experiments.common import format_table
from repro.experiments.diagnosis_data import build_dataset, generate_runs

FAMILIES = ("procstat", "meminfo", "vmstat", "spapiHASW", "aries_nic_mmr")


def _drop_family(dataset: DiagnosisDataset, family: str) -> DiagnosisDataset:
    keep = [
        i
        for i, name in enumerate(dataset.feature_names)
        if f"::{family}__" not in name
    ]
    return DiagnosisDataset(
        X=dataset.X[:, keep],
        y=dataset.y,
        feature_names=[dataset.feature_names[i] for i in keep],
        groups=dataset.groups,
    )


class FeatureFamilyAblation:
    def __init__(self, rows):
        self.rows = rows

    def render(self):
        return format_table(
            ["feature set", "RandomForest macro F1"],
            self.rows,
            title="Ablation: dropping metric families from diagnosis",
        )


def test_ablation_features(benchmark):
    def run():
        runs = generate_runs(iterations=30, seed=2)
        dataset = build_dataset(runs, window=20, stride=10)
        rows = []
        # Only the random forest matters here; skip the other two models.
        pipeline = DiagnosisPipeline(
            models={
                "RandomForest": lambda: RandomForestClassifier(
                    n_estimators=40, seed=2
                )
            },
            folds=3,
            seed=2,
        )
        full = pipeline.evaluate(dataset)["RandomForest"].macro_f1
        rows.append(("all families", full))
        for family in FAMILIES:
            reduced = _drop_family(dataset, family)
            score = pipeline.evaluate(reduced)["RandomForest"].macro_f1
            rows.append((f"without {family}", score))
        return FeatureFamilyAblation(rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    scores = dict(result.rows)
    full = scores["all families"]
    assert full > 0.7
    # Sanity: each feature vector length is a multiple of the stat count.
    assert len(STAT_NAMES) == 11
    # No single family is load-bearing enough to collapse diagnosis
    # entirely, but dropping the hardware counters must not help.
    assert scores["without spapiHASW"] <= full + 0.05
