#!/usr/bin/env python
"""Core performance microbenchmarks (``make bench-core``).

Five benchmarks exercise the engine's hot paths and write their numbers
to ``BENCH_core.json`` (committed at the repo root as the regression
baseline):

``engine_throughput``
    Raw event-dispatch rate: many short segments under the trivial
    :class:`~repro.sim.engine.UnitRateModel`, reported as events/s.

``resolve_heavy``
    The contention scenario the incremental resolver targets: miniMD at
    8 ranks/node on 4 of 16 Voltrino nodes with CPU, memory-bandwidth
    and network anomalies plus 1 Hz monitoring.  Run three ways — object
    backend with the incremental resolver disabled and enabled, then the
    array backend — asserting identical simulated results and
    non-trivial reuse counters for each path.  The gate metric
    (``runs_per_s``) tracks the array backend, the engine's fastest
    supported configuration; ``object_runs_per_s`` keeps the scalar
    path's trend alongside it.

``waterfill_wide``
    The vectorized max-min share solver on wide oversubscribed demand
    vectors (the regime the array backend's network and memory stages
    feed it), reported as solves/s.

``same_timestamp_burst``
    The calendar queue under the engine's batched-dispatch access
    pattern: bursts of equal-timestamp events pushed and drained through
    ``peek_time``/``pop_at``, reported as events/s.

``figure_end_to_end``
    One small end-to-end figure (the Varbench-style variability
    extension) timing the full stack: apps, anomalies, sweep runner,
    report rendering.

``obs_overhead``
    The cost of observability in its three states on one fixed workload:
    never attached, attached-then-**detached** (must be free — the
    pay-for-what-you-use contract), and attached with **buffered** spans
    vs **streaming** sinks writing to disk.  All four must simulate
    byte-identical results.  The detached state is gated hard at
    ``--max-obs-overhead`` (default 1%): a detach that leaves residual
    hooks behind is a correctness bug, not drift.  The gate measures the
    telemetry layer's *own* timers (``monitoring``/``obs``) as a fraction
    of the detached runs' wall time — exactly zero after a correct
    detach, so host noise cannot trip it.

Compare mode (the CI gate)::

    python benchmarks/perf/bench_core.py --baseline BENCH_core.json \
        --max-regression 2.0

fails with exit 1 if any benchmark's throughput metric regressed by more
than the given factor against the baseline file.  Timings move with host
load, so the gate is deliberately loose — it catches algorithmic
regressions (the O(n^2) kind), not percent-level drift.  The one tight
gate is the obs ``disabled_overhead_pct`` above, which is measured from
the run's own subsystem timers and so is immune to host effects.

This is host-facing measurement code, so wall-clock reads are expected
here (``benchmarks/`` is outside the linter's simulation packages).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

# Metric per benchmark used by the regression gate: higher is better.
THROUGHPUT_METRICS = {
    "engine_throughput": "events_per_s",
    "resolve_heavy": "runs_per_s",
    "waterfill_wide": "solves_per_s",
    "same_timestamp_burst": "events_per_s",
    "figure_end_to_end": "runs_per_s",
    "obs_overhead": "runs_per_s",
}

#: hard ceiling on the detached-observability overhead (percent)
MAX_OBS_OVERHEAD_PCT = 1.0

SCHEMA = 1


def bench_engine_throughput(repeat: int) -> dict:
    """Event-dispatch rate for rate-trivial workloads (best of ``repeat``)."""
    from repro.sim.engine import Simulator, UnitRateModel
    from repro.sim.process import Segment, SimProcess

    n_procs, n_segments = 50, 200

    def body(proc):
        for i in range(n_segments):
            yield Segment(work=1.0 + (i % 7) * 0.25)

    best = None
    events = 0
    for _ in range(repeat):
        sim = Simulator(UnitRateModel())
        for p in range(n_procs):
            sim.spawn(
                SimProcess(
                    name=f"p{p}", body=body, node=f"node{p % 8}", core=p % 16
                )
            )
        t0 = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - t0
        events = sim.stats.counters["events_dispatched"]
        best = elapsed if best is None else min(best, elapsed)
    return {
        "events": events,
        "seconds": round(best, 4),
        "events_per_s": round(events / best, 1),
    }


def _resolve_heavy_run(
    incremental: bool, backend: str | None = None
) -> tuple[float, float, dict]:
    """One contention run; returns (wall seconds, app runtime, counters).

    ``backend`` selects the rate-model backend (``"object"`` /
    ``"array"``); ``None`` keeps the ambient default (``REPRO_BACKEND``).
    """
    from repro.apps import AppJob, get_app
    from repro.cluster import Cluster
    from repro.core import CpuOccupy, MemBw, NetOccupy
    from repro.monitoring import MetricService

    cluster = Cluster.voltrino(num_nodes=16, backend=backend)
    cluster.model.incremental = incremental
    service = MetricService(cluster)
    service.attach(end=1e6)
    app = get_app("miniMD").scaled(iterations=60)
    job = AppJob(app, cluster, nodes=[0, 1, 2, 3], ranks_per_node=8, seed=7)
    job.launch()
    CpuOccupy(utilization=100).launch(cluster, "node0", core=0)
    MemBw().launch(cluster, "node0", core=4)
    MemBw().launch(cluster, "node0", core=5)
    NetOccupy.launch_pair(cluster, src="node1", dst="node5", ranks=4)
    t0 = time.perf_counter()
    runtime = job.run(timeout=1e7)
    elapsed = time.perf_counter() - t0
    return elapsed, runtime, dict(cluster.sim.stats.as_dict())


def bench_resolve_heavy(repeat: int) -> dict:
    """Resolver speedups (incremental, then array) on the mixed-anomaly
    scenario.  All three paths must simulate byte-identical results."""
    full_s = incr_s = array_s = None
    for _ in range(repeat):
        elapsed_full, runtime_full, _ = _resolve_heavy_run(
            incremental=False, backend="object"
        )
        elapsed_incr, runtime_incr, counters = _resolve_heavy_run(
            incremental=True, backend="object"
        )
        elapsed_array, runtime_array, counters_array = _resolve_heavy_run(
            incremental=True, backend="array"
        )
        if runtime_full != runtime_incr:
            raise AssertionError(
                "incremental resolve changed simulated results: "
                f"{runtime_incr!r} != {runtime_full!r}"
            )
        if runtime_array != runtime_full:
            raise AssertionError(
                "array backend changed simulated results: "
                f"{runtime_array!r} != {runtime_full!r}"
            )
        full_s = elapsed_full if full_s is None else min(full_s, elapsed_full)
        incr_s = elapsed_incr if incr_s is None else min(incr_s, elapsed_incr)
        array_s = elapsed_array if array_s is None else min(array_s, elapsed_array)
    for counter in ("nodes_reused", "flow_memo_hits", "reschedules_skipped"):
        if counters.get(counter, 0) <= 0:
            raise AssertionError(
                f"incremental resolve did no work-avoidance: {counter} == 0"
            )
    for counter in (
        "array_resolves",
        "vectorized_waterfills",
        "stage1_memo_hits",
        "network_memo_hits",
        "nodes_reused",
        "batched_events",
        "reschedules_skipped",
    ):
        if counters_array.get(counter, 0) <= 0:
            raise AssertionError(
                f"array backend did no work-avoidance: {counter} == 0"
            )
    return {
        "app_runtime_simulated_s": runtime_incr,
        "seconds_full": round(full_s, 4),
        "seconds_incremental": round(incr_s, 4),
        "seconds_array": round(array_s, 4),
        "speedup": round(full_s / incr_s, 2),
        "array_speedup": round(full_s / array_s, 2),
        "runs_per_s": round(1.0 / array_s, 3),
        "object_runs_per_s": round(1.0 / incr_s, 3),
        "counters": {
            key: value
            for key, value in sorted(counters.items())
            if not key.startswith("t_")
        },
        "counters_array": {
            key: value
            for key, value in sorted(counters_array.items())
            if not key.startswith("t_")
        },
    }


def bench_waterfill_wide(repeat: int) -> dict:
    """Vectorized max-min share solves on wide oversubscribed demands.

    The array backend funnels every contended memory-bandwidth and
    network allocation through :func:`waterfill`; this times it at the
    widths a many-tenant node produces, after checking one case against
    the scalar reference (a fast-but-wrong solver must not post a score).
    """
    import numpy as np

    from repro.resources.fairshare import (
        max_min_fair_share,
        max_min_fair_share_reference,
        waterfill,
    )
    from repro.sim.rng import spawn_rng

    n, solves = 4096, 120
    rng = spawn_rng(7, "bench:waterfill-wide")
    demands = rng.uniform(0.0, 10.0, size=n)
    capacity = 0.35 * float(demands.sum())
    if max_min_fair_share(capacity, demands.tolist()) != (
        max_min_fair_share_reference(capacity, demands.tolist())
    ):
        raise AssertionError("vectorized waterfill diverged from the reference")

    cases = [np.roll(demands, k) for k in range(solves)]
    best = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        for arr in cases:
            waterfill(capacity, arr)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return {
        "width": n,
        "solves": solves,
        "seconds": round(best, 4),
        "solves_per_s": round(solves / best, 1),
    }


def bench_same_timestamp_burst(repeat: int) -> dict:
    """Calendar queue under the engine's batched-dispatch pattern.

    Bursts of equal-timestamp events (a barrier releasing a node's worth
    of ranks at once) are pushed and drained through the exact
    ``peek_time``/``pop_at`` sequence the engine's batched dispatch
    uses; drain order is checked against the FIFO tie-break contract.
    """
    from repro.sim.events import CalendarQueue

    timestamps, burst = 400, 64
    events = timestamps * burst

    def run() -> float:
        queue = CalendarQueue()
        fired: list[int] = []
        t0 = time.perf_counter()
        for ts in range(timestamps):
            when = float(ts)
            for i in range(burst):
                queue.push(when, lambda i=i: fired.append(i))
            now = queue.peek_time()
            while True:
                event = queue.pop_at(now)
                if event is None:
                    break
                event.action()
        elapsed = time.perf_counter() - t0
        if fired != list(range(burst)) * timestamps:
            raise AssertionError("burst drain violated the FIFO tie-break")
        return elapsed

    best = None
    for _ in range(repeat):
        elapsed = run()
        best = elapsed if best is None else min(best, elapsed)
    return {
        "events": events,
        "burst": burst,
        "seconds": round(best, 4),
        "events_per_s": round(events / best, 1),
    }


def bench_figure_end_to_end(repeat: int) -> dict:
    """One small figure through the full stack (apps + sweep + render)."""
    from repro.experiments.ext_variability import run_ext_variability

    best = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = run_ext_variability(
            app_name="miniMD",
            repetitions=4,
            iterations=10,
            anomalies=("none", "membw"),
        )
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    # A figure that renders to nothing is a broken benchmark, not a fast one.
    if not result.render().strip():
        raise AssertionError("figure produced empty output")
    return {"seconds": round(best, 4), "runs_per_s": round(1.0 / best, 3)}


def _obs_overhead_run(
    mode: str, stream_dir: Path | None = None
) -> tuple[float, float, float]:
    """One workload run under an observability mode.

    Returns ``(wall seconds, sim runtime, obs-attributed wall seconds)``
    where the last value sums the run's ``monitoring`` and ``obs``
    SimStats timers — every wall-clock second the telemetry layer spent
    inside this run.  Modes: ``never`` (no handle created), ``detached``
    (attached then detached before the run — must cost nothing),
    ``buffered`` (spans + metrics collected in memory), ``streaming``
    (incremental writers flushing to ``stream_dir`` during the run).
    """
    from repro.apps import AppJob, get_app
    from repro.cluster import Cluster

    cluster = Cluster.voltrino(num_nodes=4)
    streamer = None
    if mode != "never":
        from repro.obs import Observability

        obs = Observability(cluster).attach()
        if mode == "detached":
            obs.detach()
        elif mode == "streaming":
            assert stream_dir is not None
            streamer = obs.stream_to(stream_dir, chrome=False)
    app = get_app("miniMD").scaled(iterations=120)
    job = AppJob(app, cluster, nodes=[0, 1], ranks_per_node=4, seed=3)
    # The gate below is percent-level, so keep allocator/GC pauses out of
    # the timed region.
    gc.collect()
    t0 = time.perf_counter()
    runtime = job.run(timeout=1e7)
    if streamer is not None:
        streamer.close()
    elapsed = time.perf_counter() - t0
    timings = cluster.sim.stats.timings
    obs_seconds = timings.get("monitoring", 0.0) + timings.get("obs", 0.0)
    return elapsed, runtime, obs_seconds


def bench_obs_overhead(repeat: int) -> dict:
    """Observability cost: never vs detached vs buffered vs streaming.

    The states are interleaved within each round (so host drift hits all
    of them alike) and the best time per state wins.  Simulated results
    must be byte-identical across every state — observation that
    perturbs the run would invalidate the whole telemetry layer.  The
    buffered/streaming percentages are median paired per-round ratios
    (informational, ±a few percent of host noise); the gated
    ``disabled_overhead_pct`` comes from the runs' own subsystem timers.
    """
    import shutil
    import statistics
    import tempfile

    modes = ("never", "detached", "buffered", "streaming")
    rounds: dict[str, list[float]] = {mode: [] for mode in modes}
    attributed: dict[str, float] = {mode: 0.0 for mode in modes}
    runtimes: dict[str, float] = {}
    stream_root = Path(tempfile.mkdtemp(prefix="bench-obs-"))
    try:
        for round_no in range(max(repeat, 8)):
            for mode in modes:
                stream_dir = None
                if mode == "streaming":
                    stream_dir = stream_root / f"run{round_no}"
                elapsed, runtime, obs_seconds = _obs_overhead_run(mode, stream_dir)
                rounds[mode].append(elapsed)
                attributed[mode] += obs_seconds
                runtimes[mode] = runtime
    finally:
        shutil.rmtree(stream_root, ignore_errors=True)
    for mode in modes[1:]:
        if runtimes[mode] != runtimes["never"]:
            raise AssertionError(
                f"observability mode {mode!r} changed simulated results: "
                f"{runtimes[mode]!r} != {runtimes['never']!r}"
            )
    best = {mode: min(times) for mode, times in rounds.items()}
    ratios = {
        mode: sorted(
            m / n for m, n in zip(rounds[mode], rounds["never"])
        )
        for mode in modes[1:]
    }

    def median_pct(mode: str) -> float:
        return round((statistics.median(ratios[mode]) - 1.0) * 100.0, 2)

    # The gate metric is *attributed* overhead, not a paired wall-clock
    # ratio: the fraction of the detached runs' wall time spent inside
    # the ``monitoring``/``obs`` SimStats timers.  A correct detach
    # removes every hook, so the timers never fire and the metric is
    # exactly 0.0 — host noise cannot produce a false positive.  A detach
    # that leaves residual hooks behind necessarily accrues timer
    # seconds, so the regression is caught deterministically.  (Paired
    # never-vs-detached wall-clock ratios were tried first and drift
    # +/-2-4% per process from allocator/cache layout alone — far too
    # noisy to gate at 1%.)
    disabled = round(
        100.0 * attributed["detached"] / sum(rounds["detached"]), 2
    )

    return {
        "seconds_never": round(best["never"], 4),
        "seconds_detached": round(best["detached"], 4),
        "seconds_buffered": round(best["buffered"], 4),
        "seconds_streaming": round(best["streaming"], 4),
        "disabled_overhead_pct": disabled,
        "buffered_overhead_pct": median_pct("buffered"),
        "streaming_overhead_pct": median_pct("streaming"),
        "runs_per_s": round(1.0 / best["never"], 3),
    }


def run_benchmarks(repeat: int) -> dict:
    return {
        "schema": SCHEMA,
        "benchmarks": {
            "engine_throughput": bench_engine_throughput(repeat),
            "resolve_heavy": bench_resolve_heavy(repeat),
            "waterfill_wide": bench_waterfill_wide(repeat),
            "same_timestamp_burst": bench_same_timestamp_burst(repeat),
            "figure_end_to_end": bench_figure_end_to_end(repeat),
            "obs_overhead": bench_obs_overhead(repeat),
        },
    }


def check_regressions(current: dict, baseline: dict, max_regression: float) -> list[str]:
    """Names of benchmarks whose throughput regressed beyond the factor."""
    failures = []
    for name, metric in THROUGHPUT_METRICS.items():
        base = baseline.get("benchmarks", {}).get(name, {}).get(metric)
        now = current["benchmarks"].get(name, {}).get(metric)
        if base is None or now is None:
            continue
        if now * max_regression < base:
            failures.append(
                f"{name}: {metric} {now} vs baseline {base} "
                f"(>{max_regression}x regression)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_core.json"),
        help="where to write the results JSON (default BENCH_core.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON to compare against (enables the regression gate)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="allowed slowdown factor vs the baseline (default 2.0)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="repetitions per benchmark; best time wins (default 2)",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=MAX_OBS_OVERHEAD_PCT,
        help="allowed percent overhead of detached observability vs never "
        f"attached (default {MAX_OBS_OVERHEAD_PCT})",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())

    results = run_benchmarks(repeat=max(1, args.repeat))
    args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    for name, numbers in results["benchmarks"].items():
        metric = THROUGHPUT_METRICS[name]
        print(f"{name}: {metric} = {numbers[metric]}")
    print(f"wrote {args.output}")

    overhead = results["benchmarks"]["obs_overhead"]["disabled_overhead_pct"]
    if overhead > args.max_obs_overhead:
        print(
            f"REGRESSION obs_overhead: detached observability costs "
            f"{overhead}% (> {args.max_obs_overhead}% allowed) — detach is "
            "leaving hooks behind",
            file=sys.stderr,
        )
        return 1
    print(
        f"obs overhead gate passed (detached {overhead}% <= "
        f"{args.max_obs_overhead}%)"
    )

    if baseline is not None:
        failures = check_regressions(results, baseline, args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"regression gate passed (max {args.max_regression}x vs baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
