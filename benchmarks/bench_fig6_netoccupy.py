"""Fig. 6: OSU bandwidth vs message size under netoccupy."""

from conftest import emit

from repro.experiments import run_fig6


def test_fig6(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    emit(result)
    clean = result.bandwidth_gbps[0]
    # Bandwidth rises with message size (latency-bound -> peak).
    assert clean == sorted(clean)
    # More anomaly nodes -> less bandwidth, at every message size.
    for i in range(len(result.message_sizes_kb)):
        series = [result.bandwidth_gbps[n][i] for n in result.anomaly_nodes]
        assert all(a >= b for a, b in zip(series, series[1:]))
    # ... but the damage is bounded: adaptive routing over redundant
    # links keeps the worst case above half the clean bandwidth.
    worst = result.bandwidth_gbps[max(result.anomaly_nodes)]
    assert all(w > 0.5 * c for w, c in zip(worst, clean))
