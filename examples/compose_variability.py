#!/usr/bin/env python3
"""Composing complex variability patterns from anomaly instances.

The paper notes (Sec. 3) that the intensity knobs and start/end times make
it possible to compose complicated variability patterns from multiple
anomaly instances.  This example builds a "noisy neighbour day" on one
node: morning cache pressure, a midday bandwidth storm, and a slow
afternoon memory leak — then shows the pattern in the monitoring data.

Run:  python examples/compose_variability.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import Cluster
from repro.core import AnomalyInjector, Injection, make_anomaly
from repro.monitoring import MetricService

PHASES = [
    # (what, knobs, core, start, duration)
    ("cachecopy", {"cache": "L2", "rate": 0.6}, 1, 50.0, 150.0),
    ("membw", {"rate": 0.8}, 2, 250.0, 100.0),
    ("membw", {"rate": 0.8}, 3, 250.0, 100.0),
    ("memleak", {"buffer_size": 64 << 20, "rate": 1.0}, 4, 400.0, 150.0),
]


def main() -> None:
    cluster = Cluster.voltrino(num_nodes=2)
    service = MetricService(cluster)
    service.attach(end=600)

    injector = AnomalyInjector(cluster)
    for name, knobs, core, start, duration in PHASES:
        injector.add(
            Injection(
                anomaly=make_anomaly(name, **knobs),
                node="node0",
                core=core,
                start=start,
                duration=duration,
            )
        )
    injector.deploy()
    cluster.sim.run(until=600)

    util = service.series("node0", "user::procstat")
    used = service.series("node0", "MemUsed::meminfo") / 1e9
    print("time   util%   mem(GB)  active anomalies")
    for t in range(0, 600, 50):
        labels = ",".join(injector.active_labels(float(t))) or "-"
        print(f"{t:4d} {util[t]:7.1f} {used[t]:8.2f}  {labels}")

    print(f"\npeak utilization: {np.max(util):.1f}%  "
          f"peak memory: {np.max(used):.2f} GB")
    print("Each phase is visible in the LDMS-style series — this is the "
          "composition workflow the paper describes.")


if __name__ == "__main__":
    main()
