#!/usr/bin/env python3
"""Use case 3 (paper Sec. 5.3): build anomaly-resilient applications.

Reproduces the Fig. 13 study: a Charm++-style 3D stencil on 32 cores,
with cpuoccupy sweeping from 0% to 3200% of one CPU, under two load
balancers.  The capacity-measuring GreedyRefineLB rides out the anomaly;
the object-count-only balancer pays the slowest core's price.

Run:  python examples/resilient_loadbalancing.py
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core import CpuOccupy
from repro.runtime import CharmRuntime, GreedyRefineLB, LBObjOnly, WorkObject


def stencil_time(balancer, occupied_pct: int) -> float:
    cluster = Cluster(num_nodes=1)
    objects = [WorkObject(oid=i, load=3.2 / 96) for i in range(96)]
    full, rem = divmod(occupied_pct, 100)
    for core in range(min(full, 32)):
        CpuOccupy(utilization=100).launch(cluster, "node0", core=core)
    if rem and full < 32:
        CpuOccupy(utilization=rem).launch(cluster, "node0", core=full)
    runtime = CharmRuntime(
        cluster, "node0", list(range(32)), objects, balancer, iterations=8
    )
    runtime.run(timeout=3_600)
    return runtime.mean_iteration_time(skip=2)


def main() -> None:
    print(f"{'cpuoccupy %':>12s} {'LBObjOnly':>12s} {'GreedyRefineLB':>15s}")
    for pct in (0, 200, 400, 800, 1600, 2400, 3200):
        naive = stencil_time(LBObjOnly(), pct)
        greedy = stencil_time(GreedyRefineLB(), pct)
        marker = "  <- Greedy avoids the occupied cores" if greedy < 0.9 * naive else ""
        print(f"{pct:12d} {naive:12.4f} {greedy:15.4f}{marker}")
    print(
        "\nTakeaway: a balancer that measures delivered core capacity keeps\n"
        "iteration times near-nominal until the anomaly floods most cores —\n"
        "the resilience argument of the paper's Sec. 5.3."
    )


if __name__ == "__main__":
    main()
