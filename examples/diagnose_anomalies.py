#!/usr/bin/env python3
"""Use case 1 (paper Sec. 5.1): evaluate an anomaly-diagnosis pipeline.

Generates labelled monitoring data by running applications with injected
anomalies, trains the three tree-based classifiers, and prints per-class
F1 scores plus the random-forest confusion matrix — a compact rerun of
the paper's Figs. 9 and 10.

Run:  python examples/diagnose_anomalies.py        (takes a few minutes)
"""

from __future__ import annotations

from repro.analytics.diagnosis import DiagnosisPipeline
from repro.experiments.diagnosis_data import build_dataset, generate_runs


def main() -> None:
    print("generating labelled runs (8 apps x 6 anomaly classes)...")
    runs = generate_runs(iterations=30, seed=42)
    dataset = build_dataset(runs, window=20, stride=10)
    print(f"dataset: {dataset.n_samples} windows, "
          f"{dataset.X.shape[1]} features, classes {dataset.class_counts()}")

    pipeline = DiagnosisPipeline(folds=3, seed=42)
    reports = pipeline.evaluate(dataset)

    for name, report in reports.items():
        print(f"\n{name}: macro F1 = {report.macro_f1:.3f}")
        for cls, score in report.f1_per_class.items():
            print(f"  {cls:12s} F1 = {score:.3f}")

    rf = reports["RandomForest"]
    print("\nRandomForest confusion matrix (rows = true class):")
    header = " ".join(f"{label:>10s}" for label in rf.labels)
    print(f"{'':12s}{header}")
    for i, label in enumerate(rf.labels):
        row = " ".join(f"{v:10.2f}" for v in rf.confusion[i])
        print(f"{label:12s}{row}")


if __name__ == "__main__":
    main()
