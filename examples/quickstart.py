#!/usr/bin/env python3
"""Quickstart: inject an HPAS anomaly next to an application and watch it.

Builds a Voltrino-like cluster, launches miniGhost on four nodes, injects
a cachecopy anomaly half-way through on the first node, and reports the
slowdown plus the monitoring view of the anomaly window.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import AppJob, get_app
from repro.cluster import Cluster
from repro.core import AnomalyInjector, make_anomaly
from repro.monitoring import MetricService


def main() -> None:
    # --- clean reference run ------------------------------------------------
    cluster = Cluster.voltrino(num_nodes=8)
    app = get_app("CoMD").scaled(iterations=60)
    job = AppJob(app, cluster, nodes=[0, 1, 2, 3], ranks_per_node=4, seed=1)
    clean_runtime = job.run(timeout=50_000)
    print(f"clean CoMD runtime:          {clean_runtime:8.1f} s")

    # --- run with an injected anomaly ----------------------------------------
    cluster = Cluster.voltrino(num_nodes=8)
    service = MetricService(cluster)
    service.attach(end=100_000)
    app = get_app("CoMD").scaled(iterations=60)
    job = AppJob(app, cluster, nodes=[0, 1, 2, 3], ranks_per_node=4, seed=1)
    job.launch()

    injector = AnomalyInjector(cluster)
    sibling = cluster.spec.sibling_of(0)
    injector.inject(
        make_anomaly("cachecopy", cache="L3"),
        node="node0",
        core=sibling,
        start=clean_runtime / 3,
        duration=clean_runtime / 3,
    )

    anomalous_runtime = job.run(timeout=100_000)
    service.detach()
    print(f"with cachecopy (middle 1/3): {anomalous_runtime:8.1f} s")
    print(f"slowdown:                    {anomalous_runtime / clean_runtime:8.2f} x")

    # --- what monitoring saw --------------------------------------------------
    misses = service.series("node0", "LLC_MISSES::spapiHASW")
    window = slice(int(clean_runtime / 3) + 2, int(2 * clean_runtime / 3) - 2)
    before = float(np.mean(misses[2 : int(clean_runtime / 3) - 2]))
    during = float(np.mean(misses[window]))
    print(f"node0 LLC misses/s before:   {before:8.3g}")
    print(f"node0 LLC misses/s during:   {during:8.3g}  "
          f"({during / before:.1f}x — the anomaly is visible in LDMS data)")


if __name__ == "__main__":
    main()
