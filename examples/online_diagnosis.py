#!/usr/bin/env python3
"""Online (runtime) anomaly diagnosis with detection latency.

Trains the diagnosis pipeline offline on labelled HPAS runs, then watches
a live application: a cachecopy anomaly switches on mid-run and the
sliding-window diagnoser names it within seconds of onset.

Run:  python examples/online_diagnosis.py     (takes a few minutes)
"""

from __future__ import annotations

from repro.experiments.ext_online import run_ext_online


def main() -> None:
    print("training offline + streaming a live run...")
    result = run_ext_online()
    report = result.report
    start, end = result.anomaly_window

    print(f"\ncachecopy active from t={start:.0f}s to t={end:.0f}s")
    print("prediction timeline (one row per 5 s window step):")
    current = None
    for p in report.predictions:
        if p.label != current:
            print(f"  t={p.time:6.0f}s  -> {p.label}")
            current = p.label
    print(f"\ntimeline accuracy:  {report.accuracy:.2f}")
    if report.detection_latency is not None:
        print(f"detection latency:  {report.detection_latency:.0f} s after onset")
    else:
        print("detection latency:  anomaly was never named")


if __name__ == "__main__":
    main()
