#!/usr/bin/env python3
"""Use case 2 (paper Sec. 5.2): evaluate allocation policies under anomalies.

Reproduces the Figs. 11-12 scenario: cpuoccupy on node0 and memleak on
node2 of an 8-node system, then SW4lite submitted through Round-Robin and
WBAS allocation.  WBAS reads the LDMS-style monitoring data, computes
``CP = (1 - Load%) x MemFree`` per node, and sidesteps both anomalies.

Run:  python examples/evaluate_scheduler.py
"""

from __future__ import annotations

from repro.apps import get_app
from repro.cluster import Cluster
from repro.core import CpuOccupy, MemLeak
from repro.monitoring import MetricService
from repro.scheduling import (
    JobScheduler,
    RoundRobin,
    WellBalancedAllocation,
    observe_nodes,
)
from repro.units import GB, MB


def run_policy(policy) -> tuple[list[str], float]:
    cluster = Cluster.voltrino(num_nodes=8)
    service = MetricService(cluster)
    service.attach(end=1_000_000)

    sibling = cluster.spec.sibling_of(0)
    CpuOccupy(utilization=100).launch(cluster, "node0", core=sibling)
    leak_to_1gb = cluster.node(2).memory.free - 1 * GB
    MemLeak(buffer_size=512 * MB, rate=50, limit=leak_to_1gb).launch(
        cluster, "node2", core=0
    )
    cluster.sim.run(until=60)  # monitoring warm-up

    if isinstance(policy, WellBalancedAllocation):
        print("\nWBAS node ranking (CP = (1 - Load%) x MemFree):")
        for status in sorted(
            observe_nodes(service), key=lambda s: -s.computing_capacity
        ):
            print(
                f"  {status.name}: load={status.wbas_load * 100:5.1f}%  "
                f"free={status.mem_free / 1e9:6.1f} GB  "
                f"CP={status.computing_capacity / 1e9:7.1f}"
            )

    scheduler = JobScheduler(cluster, service)
    app = get_app("sw4lite").scaled(iterations=60)
    allocation, job = scheduler.submit(app, policy, n_nodes=4, ranks_per_node=4, seed=9)
    runtime = job.run(timeout=900_000)
    return allocation.nodes, runtime


def main() -> None:
    results = {}
    for policy in (WellBalancedAllocation(), RoundRobin()):
        nodes, runtime = run_policy(policy)
        results[policy.name] = runtime
        print(f"\n{policy.name}: allocated {nodes}, runtime {runtime:.1f} s")
    saving = 1 - results["WBAS"] / results["RoundRobin"]
    print(f"\nWBAS reduces execution time by {saving * 100:.0f}% "
          f"(paper reports 26% on Voltrino)")


if __name__ == "__main__":
    main()
