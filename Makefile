# Developer entry points. CI (.github/workflows/ci.yml) runs `make lint test`.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint test check benchmarks

lint:
	$(PYTHON) -m repro lint src/ tests/

test:
	$(PYTHON) -m pytest -x -q

check: lint test

benchmarks:
	$(PYTHON) -m pytest benchmarks/ -q
