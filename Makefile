# Developer entry points. CI (.github/workflows/ci.yml) runs `make lint test`.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint test fuzz check benchmarks bench-core

lint:
	$(PYTHON) -m repro lint src/ tests/

test:
	$(PYTHON) -m pytest -x -q

# Invariant/oracle fuzzing: replay the pinned corpus plus a small fresh
# batch (see docs/TESTING.md).
fuzz:
	$(PYTHON) -m repro check --corpus tests/check/corpus.json --cases 5 --seed 0

check: lint test fuzz

benchmarks:
	$(PYTHON) -m pytest benchmarks/ -q

# Core perf microbenchmarks; compares against the committed baseline and
# fails on a >2x throughput regression (see docs/PERFORMANCE.md).
bench-core:
	$(PYTHON) benchmarks/perf/bench_core.py \
		--baseline BENCH_core.json --output BENCH_core.new.json
