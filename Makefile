# Developer entry points. CI (.github/workflows/ci.yml) runs `make lint test`.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint lint-baseline test fuzz check benchmarks bench-core

# Per-file rules plus the whole-program flow analysis (RL011+), gated on
# the committed baseline so only *new* findings fail.
lint:
	$(PYTHON) -m repro lint src/ tests/
	$(PYTHON) -m repro lint src/ tests/ --flow --baseline LINT_baseline.json

# Deliberately re-record the flow baseline (see docs/LINT.md).
lint-baseline:
	$(PYTHON) -m repro lint src/ tests/ --flow --no-cache \
		--write-baseline LINT_baseline.json

test:
	$(PYTHON) -m pytest -x -q

# Invariant/oracle fuzzing: replay the pinned corpora (generated cases
# plus workload traces) and a small fresh batch (see docs/TESTING.md).
fuzz:
	$(PYTHON) -m repro check --corpus tests/check/corpus.json \
		--trace-corpus tests/traces/corpus --cases 5 --seed 0

check: lint test fuzz

benchmarks:
	$(PYTHON) -m pytest benchmarks/ -q

# Core perf microbenchmarks; compares against the committed baseline and
# fails on a >2x throughput regression (see docs/PERFORMANCE.md).
bench-core:
	$(PYTHON) benchmarks/perf/bench_core.py \
		--baseline BENCH_core.json --output BENCH_core.new.json
